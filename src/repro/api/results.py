"""Lazy, deterministically-ordered result sets for the ``select`` verb.

:meth:`repro.api.QueryEngine.select` returns a :class:`ResultSet` without
executing anything: the lowered enumeration program runs on the engine's
virtual machine the first time rows are pulled (iteration, :meth:`fetch`,
:meth:`to_rows`, ``len``), and the distinct output tuples then stream out
in *deterministic order* — natural tuple order when the values support
it, a type-aware total order otherwise — in morsel-sized batches.  The
order depends only on the output tuples themselves, so it is identical
across storage backends, strategies, and ``parallelism`` settings, and a
``limit`` takes exactly the first ``min(limit, total)`` tuples of that
order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import QueryResult

#: How many rows one streaming batch carries (mirrors the VM's default
#: morsel granularity; overridable per result set).
DEFAULT_BATCH_SIZE = 8192

Row = Tuple[object, ...]


class _Ordered:
    """A comparison wrapper giving any value a total order.

    Natural ``<`` is used when the values support it; values of the same
    type that do not (complex numbers, arbitrary objects) fall back to
    comparing their ``repr`` — deterministic, which is all the result
    order promises.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Ordered) and self.value == other.value

    def __lt__(self, other: "_Ordered") -> bool:
        try:
            return self.value < other.value  # type: ignore[operator]
        except TypeError:
            return repr(self.value) < repr(other.value)

    def __hash__(self) -> int:  # pragma: no cover - not used as a dict key
        return hash(self.value)


def row_order_key(row: Sequence[object]) -> Tuple:
    """A total-order sort key over heterogeneous value tuples.

    The fallback comparator behind :func:`_ordered_rows`, used when
    natural tuple comparison raises: values are compared within their
    type first (type name, then value), so mixed-type columns — ints next
    to strings — sort deterministically instead of raising ``TypeError``;
    same-type values without a natural order fall back to their ``repr``.
    Booleans are folded into ints the way Python's own ordering treats
    them.
    """
    key = []
    for value in row:
        kind = type(value)
        if kind is bool:
            kind = int
        if kind is float:
            # NaN is not comparable to anything (not even itself), which
            # would silently break the total order; canonicalize it to a
            # bucket sorting after every real float.  Distinct rows that
            # differ only in NaN identity tie — their relative order is
            # unspecified (they are indistinguishable by value).
            if value != value:
                key.append(("float", _Ordered((1, 0.0))))
            else:
                key.append(("float", _Ordered((0, value))))
            continue
        key.append((kind.__name__, _Ordered(value)))
    return tuple(key)


#: Types whose natural ordering matches :func:`row_order_key` when a
#: column is type-uniform (bool folds into int in both orders).
_NATURAL_KINDS = (int, float, str)


def _uniform_natural_order(rows) -> bool:
    """Whether every column holds one natural-ordered type throughout.

    When true, plain tuple comparison is total *and* ranks rows exactly
    like :func:`row_order_key` (equal type names drop out of every
    comparison), so the cheap natural sort may be used.  The decision is a
    function of the value types alone — never of iteration order or of
    which pairs a particular sort happens to compare — keeping the chosen
    order deterministic across backends, strategies and limits.
    """
    kinds: Optional[List[type]] = None
    for row in rows:
        if kinds is None:
            kinds = [int if type(v) is bool else type(v) for v in row]
            if any(kind not in _NATURAL_KINDS for kind in kinds):
                return False
            if any(value != value for value in row):  # NaN: no total order
                return False
        else:
            for value, kind in zip(row, kinds):
                value_kind = type(value)
                if value_kind is bool:
                    value_kind = int
                if value_kind is not kind:
                    return False
                if value != value:  # NaN anywhere forces the keyed sort
                    return False
    return True


def _ordered_rows(rows, limit: Optional[int]) -> List[Row]:
    """The deterministic order of an output-tuple set (limited prefix).

    Natural tuple comparison is ~20x cheaper than the keyed sort (no
    per-value wrapper allocation), so it is used whenever a type-uniformity
    scan proves it equivalent to :func:`row_order_key`; mixed-type or
    unorderable columns take the keyed sort.  The comparator choice
    depends only on the tuple set, so the same set orders the same way
    everywhere, and the bounded ``heapq.nsmallest`` path (O(n log k))
    returns exactly the first-``k`` prefix of the corresponding full sort.
    """
    if _uniform_natural_order(rows):
        if limit is not None:
            return heapq.nsmallest(limit, rows)
        return sorted(rows)
    if limit is not None:
        return heapq.nsmallest(limit, rows, key=row_order_key)
    return sorted(rows, key=row_order_key)


class ResultSet:
    """The streaming handle returned by :meth:`~repro.api.QueryEngine.select`.

    Iterating (or calling :meth:`fetch` / :meth:`to_rows` / ``len``) runs
    the query once and then serves the distinct output tuples in
    deterministic sorted order; ``limit`` truncates the stream to the
    first ``min(limit, total)`` tuples.  :attr:`result` exposes the full
    :class:`~repro.api.QueryResult` (timings, traces, cache provenance)
    of the underlying run.
    """

    def __init__(
        self,
        columns: Tuple[str, ...],
        run: Callable[[], "QueryResult"],
        limit: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.columns = tuple(columns)
        self.limit = limit
        self.batch_size = batch_size
        self._run = run
        self._result: Optional["QueryResult"] = None
        self._rows: Optional[List[Row]] = None
        self._cursor = 0

    # ------------------------------------------------------------------
    def _materialize(self) -> List[Row]:
        """Execute (once) and fix the deterministic output order."""
        if self._rows is None:
            result = self._run()
            self._result = result
            relation = result.relation
            self._rows = (
                [] if relation is None else _ordered_rows(relation.rows, self.limit)
            )
        return self._rows

    @property
    def executed(self) -> bool:
        """Whether the underlying query has run yet."""
        return self._rows is not None

    @property
    def result(self) -> "QueryResult":
        """The run's :class:`~repro.api.QueryResult` (executes if needed)."""
        self._materialize()
        assert self._result is not None
        return self._result

    # ------------------------------------------------------------------
    # Streaming access
    # ------------------------------------------------------------------
    def batches(self) -> Iterator[List[Row]]:
        """The ordered rows in batches of at most :attr:`batch_size`."""
        rows = self._materialize()
        for start in range(0, len(rows), self.batch_size):
            yield rows[start : start + self.batch_size]

    def __iter__(self) -> Iterator[Row]:
        for batch in self.batches():
            yield from batch

    def fetch(self, n: int) -> List[Row]:
        """The next ``n`` rows of the stream (cursor-based; may be short).

        Returns an empty list once the stream is exhausted.  The cursor is
        independent of :meth:`__iter__`/:meth:`to_rows`, which always start
        from the beginning.
        """
        if n < 0:
            raise ValueError("fetch size must be non-negative")
        rows = self._materialize()
        chunk = rows[self._cursor : self._cursor + n]
        self._cursor += len(chunk)
        return chunk

    def rewind(self) -> "ResultSet":
        """Reset the :meth:`fetch` cursor to the first row."""
        self._cursor = 0
        return self

    def to_rows(self) -> List[Row]:
        """All (limited) rows as a list, in the deterministic order."""
        return list(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{len(self._rows)} rows" if self._rows is not None else "pending"
        limit = f", limit={self.limit}" if self.limit is not None else ""
        return f"ResultSet(({', '.join(self.columns)}){limit}; {state})"
