"""Unit tests for the hypergraph substrate."""

from __future__ import annotations

import pytest

from repro.hypergraph import (
    Hypergraph,
    clique,
    cycle,
    four_clique,
    four_cycle,
    lemma_c15_query,
    loomis_whitney,
    matrix_product_query,
    named_query,
    path,
    pyramid,
    star,
    subsets,
    three_pyramid,
    triangle,
    two_triangles,
)


class TestHypergraphBasics:
    def test_vertices_and_edges(self):
        h = Hypergraph("XYZ", [("X", "Y"), ("Y", "Z")])
        assert h.num_vertices == 3
        assert h.num_edges == 2
        assert frozenset({"X", "Y"}) in h.edges

    def test_duplicate_edges_collapse(self):
        h = Hypergraph("XY", [("X", "Y"), ("Y", "X")])
        assert h.num_edges == 1

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph("XY", [("X", "Z")])

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph("XY", [()])

    def test_equality_and_hash(self):
        a = Hypergraph("XYZ", [("X", "Y"), ("Y", "Z")])
        b = Hypergraph(["Z", "Y", "X"], [("Y", "Z"), ("X", "Y")])
        assert a == b
        assert hash(a) == hash(b)

    def test_sorted_accessors_are_deterministic(self):
        h = four_cycle()
        assert h.sorted_vertices() == ("X1", "X2", "X3", "X4")
        assert h.sorted_edges()[0] == ("X1", "X2")


class TestNeighbourhoodOperators:
    def test_incident_edges_of_vertex(self):
        h = triangle()
        incident = h.incident_edges("X")
        assert incident == frozenset({frozenset("XY"), frozenset("XZ")})

    def test_union_and_neighbours(self):
        # Example A.1 from the paper.
        h = Hypergraph("ABCDE", [("A", "B", "C"), ("A", "B", "D"), ("C", "D", "E")])
        assert h.union_of_incident("A") == frozenset("ABCD")
        assert h.neighbours("A") == frozenset("BCD")
        assert h.incident_edges("A") == frozenset(
            {frozenset("ABC"), frozenset("ABD")}
        )

    def test_block_neighbourhood(self):
        h = four_cycle()
        block = {"X1", "X2"}
        assert h.union_of_incident(block) == frozenset({"X1", "X2", "X3", "X4"})
        assert h.neighbours(block) == frozenset({"X3", "X4"})

    def test_isolated_vertex_neighbourhood(self):
        h = Hypergraph("XYZ", [("X", "Y")])
        assert h.incident_edges("Z") == frozenset()
        assert h.union_of_incident("Z") == frozenset({"Z"})
        assert h.neighbours("Z") == frozenset()

    def test_unknown_vertex_raises(self):
        with pytest.raises(ValueError):
            triangle().neighbours("W")


class TestElimination:
    def test_eliminate_vertex_from_cycle(self):
        # Example A.3: eliminating B from the 4-cycle ABCD yields a triangle.
        h = Hypergraph("ABCD", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")])
        reduced = h.eliminate("B")
        assert reduced.vertices == frozenset("ACD")
        assert frozenset("AC") in reduced.edges
        assert frozenset("CD") in reduced.edges
        assert frozenset("AD") in reduced.edges

    def test_eliminate_block(self):
        h = four_clique()
        reduced = h.eliminate({"X", "Y"})
        assert reduced.vertices == frozenset({"Z", "W"})
        assert frozenset({"Z", "W"}) in reduced.edges

    def test_eliminate_everything(self):
        h = triangle()
        reduced = h.eliminate({"X", "Y", "Z"})
        assert reduced.num_vertices == 0
        assert reduced.num_edges == 0

    def test_eliminate_empty_rejected(self):
        with pytest.raises(ValueError):
            triangle().eliminate(frozenset())


class TestStructuralPredicates:
    def test_connectivity(self):
        assert triangle().is_connected()
        disconnected = Hypergraph("ABCD", [("A", "B"), ("C", "D")])
        assert not disconnected.is_connected()

    def test_clustered(self):
        assert triangle().is_clustered()
        assert four_clique().is_clustered()
        assert three_pyramid().is_clustered()
        assert lemma_c15_query().is_clustered()
        assert not four_cycle().is_clustered()
        assert not path(4).is_clustered()

    def test_acyclicity(self):
        assert path(4).is_acyclic()
        assert star(3).is_acyclic()
        assert matrix_product_query().is_acyclic()
        assert not triangle().is_acyclic()
        assert not four_cycle().is_acyclic()

    def test_is_graph(self):
        assert triangle().is_graph()
        assert not three_pyramid().is_graph()


class TestDerivedHypergraphs:
    def test_induced(self):
        h = four_clique()
        induced = h.induced({"X", "Y", "Z"})
        assert induced.vertices == frozenset("XYZ")
        # Edges clipped to the subset may become singletons contained in the
        # binary edges; after removing redundant edges this is the triangle.
        assert induced.remove_redundant_edges() == triangle()

    def test_rename(self):
        renamed = triangle().rename({"X": "A", "Y": "B", "Z": "C"})
        assert renamed.vertices == frozenset("ABC")
        with pytest.raises(ValueError):
            triangle().rename({"X": "Y"})

    def test_remove_redundant_edges(self):
        h = Hypergraph("XYZ", [("X", "Y"), ("X", "Y", "Z")])
        assert h.remove_redundant_edges().num_edges == 1

    def test_with_edge(self):
        h = path(3).with_edge(("X1", "X3"))
        assert h == triangle().rename({"X": "X1", "Y": "X2", "Z": "X3"})

    def test_subsets_helper(self):
        all_subsets = list(subsets("XY"))
        assert len(all_subsets) == 4
        assert frozenset() in all_subsets
        assert len(list(subsets("XYZ", min_size=2))) == 4


class TestQueryGenerators:
    def test_triangle_matches_eq2(self):
        h = triangle()
        assert h.num_vertices == 3 and h.num_edges == 3

    def test_two_triangles_matches_eq3(self):
        h = two_triangles()
        assert h.num_vertices == 4 and h.num_edges == 5

    def test_clique_counts(self):
        for k in range(3, 7):
            h = clique(k)
            assert h.num_vertices == k
            assert h.num_edges == k * (k - 1) // 2
            assert h.is_clustered()

    def test_cycle_counts(self):
        for k in range(3, 8):
            h = cycle(k)
            assert h.num_vertices == k and h.num_edges == k
            assert h.is_graph()
        assert cycle(3) == triangle().rename({"X": "X1", "Y": "X2", "Z": "X3"})

    def test_pyramid_structure(self):
        h = pyramid(4)
        assert h.num_vertices == 5
        assert h.num_edges == 5
        wide = frozenset({"X1", "X2", "X3", "X4"})
        assert wide in h.edges

    def test_loomis_whitney(self):
        h = loomis_whitney(3)
        assert h.num_edges == 3
        assert all(len(e) == 2 for e in h.edges)

    def test_named_queries(self):
        assert named_query("triangle") == triangle()
        with pytest.raises(KeyError):
            named_query("not-a-query")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cycle(2)
        with pytest.raises(ValueError):
            clique(1)
        with pytest.raises(ValueError):
            pyramid(1)
