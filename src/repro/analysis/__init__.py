"""Static analysis for the engine: plan verification and repo lint.

Two independent tools live here:

* :mod:`repro.analysis.verify` — a pass pipeline over lowered/optimized
  :class:`~repro.exec.ir.Program` DAGs that statically rejects unsound
  plans (broken schema inference, structural-key collisions, uncalibrated
  streaming sinks, unsafe morsel specs, cache-key drift) before the VM
  ever executes them.  Wired into
  :class:`~repro.api.QueryEngine` via ``verify_plans=...``, the
  ``EXPLAIN VERIFY`` statement and the ``repro verify`` CLI verb.
* :mod:`repro.analysis.lint` — an AST-based linter enforcing
  *repo-specific* invariants of the execution layer (lock-guarded shared
  state, monotonic clocks in kernels, bounded caches, cancellation not
  swallowed), run as ``repro lint`` and as a CI job.
"""

from .lint import LintFinding, LintReport, lint_paths, registered_rules
from .verify import (
    VERIFIER_PASSES,
    PlanVerificationError,
    Violation,
    assert_verified,
    verify_program,
)

__all__ = [
    "LintFinding",
    "LintReport",
    "PlanVerificationError",
    "VERIFIER_PASSES",
    "Violation",
    "assert_verified",
    "lint_paths",
    "registered_rules",
    "verify_program",
]
