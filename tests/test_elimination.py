"""Tests for variable elimination orders, GVEOs and tree decompositions."""

from __future__ import annotations

import pytest

from repro.hypergraph import (
    Hypergraph,
    all_gveos,
    all_tree_decompositions,
    all_veos,
    bag_sets_of_veo,
    count_gveos,
    decomposition_from_veo,
    elimination_sequence,
    enumerate_bag_families,
    four_cycle,
    ordered_set_partitions,
    relevant_steps,
    triangle,
    trivial_decomposition,
    two_triangles,
)


class TestEliminationSequence:
    def test_example_a3_order_sigma1(self):
        """Example A.3: eliminating (B, C, D, A) from the 4-cycle."""
        h = Hypergraph("ABCD", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")])
        steps = elimination_sequence(h, ["B", "C", "D", "A"])
        unions = [step.union for step in steps]
        assert unions[0] == frozenset("ABC")
        assert unions[1] == frozenset("ACD")
        assert unions[2] == frozenset("AD")
        assert unions[3] == frozenset("A")

    def test_example_a3_order_sigma2(self):
        h = Hypergraph("ABCD", [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")])
        steps = elimination_sequence(h, ["A", "B", "C", "D"])
        assert steps[0].union == frozenset("ABD")
        assert steps[1].union == frozenset("BCD")

    def test_gveo_blocks(self):
        h = four_cycle()
        steps = elimination_sequence(h, [{"X1", "X3"}, {"X2"}, {"X4"}])
        assert steps[0].union == frozenset({"X1", "X2", "X3", "X4"})
        assert steps[1].union == frozenset({"X2", "X4"})

    def test_invalid_orders_rejected(self):
        h = triangle()
        with pytest.raises(ValueError):
            elimination_sequence(h, ["X", "Y"])  # does not cover Z
        with pytest.raises(ValueError):
            elimination_sequence(h, ["X", "Y", "Z", "X"])  # duplicates
        with pytest.raises(ValueError):
            elimination_sequence(h, [{"X", "Y"}, {"Y", "Z"}])  # overlapping blocks

    def test_relevant_steps_filter(self):
        h = triangle()
        steps = elimination_sequence(h, ["X", "Y", "Z"])
        relevant = relevant_steps(steps)
        # The first union is XYZ; later unions are subsets and are dropped.
        assert len(relevant) == 1
        assert relevant[0].union == frozenset("XYZ")

    def test_relevant_steps_keep_incomparable_unions(self):
        h = four_cycle()
        steps = elimination_sequence(h, ["X1", "X2", "X3", "X4"])
        relevant = relevant_steps(steps)
        assert len(relevant) == 2
        assert relevant[0].union == frozenset({"X1", "X2", "X4"})
        assert relevant[1].union == frozenset({"X2", "X3", "X4"})


class TestOrderEnumeration:
    def test_all_veos_count(self):
        assert len(list(all_veos(triangle()))) == 6
        assert len(list(all_veos(four_cycle()))) == 24

    def test_ordered_set_partitions_count(self):
        assert len(list(ordered_set_partitions(["a"]))) == 1
        assert len(list(ordered_set_partitions(["a", "b"]))) == 3
        assert len(list(ordered_set_partitions(["a", "b", "c"]))) == 13
        assert len(list(ordered_set_partitions(list("abcd")))) == 75

    def test_ordered_set_partitions_are_partitions(self):
        items = list("abcd")
        seen = set()
        for partition in ordered_set_partitions(items):
            union: set = set()
            for block in partition:
                assert block, "blocks must be non-empty"
                assert not (union & block), "blocks must be disjoint"
                union |= block
            assert union == set(items)
            seen.add(partition)
        assert len(seen) == 75  # all distinct

    def test_count_gveos_matches_enumeration(self):
        assert count_gveos(3) == 13
        assert count_gveos(4) == 75
        assert count_gveos(5) == 541
        assert count_gveos(6) == 4683
        assert len(list(all_gveos(triangle()))) == count_gveos(3)


class TestTreeDecompositions:
    def test_trivial_decomposition(self):
        td = trivial_decomposition(triangle())
        assert td.is_trivial()
        assert td.width_plus_one == 3

    def test_four_cycle_has_two_decompositions(self):
        """Example A.2: the 4-cycle has exactly two non-trivial decompositions."""
        families = enumerate_bag_families(four_cycle(), prune_dominated=True)
        as_sets = {frozenset(f) for f in families}
        expected_1 = frozenset(
            {frozenset({"X1", "X2", "X3"}), frozenset({"X1", "X3", "X4"})}
        )
        expected_2 = frozenset(
            {frozenset({"X2", "X3", "X4"}), frozenset({"X1", "X2", "X4"})}
        )
        assert expected_1 in as_sets
        assert expected_2 in as_sets
        assert len(as_sets) == 2

    def test_triangle_only_trivial_decomposition(self):
        families = enumerate_bag_families(triangle())
        assert len(families) == 1
        assert frozenset("XYZ") in next(iter(families))

    def test_decomposition_from_veo_is_valid(self):
        for order in all_veos(two_triangles()):
            td = decomposition_from_veo(two_triangles(), order)
            assert td.is_non_redundant()
            assert td.covers_vertex_connectivity()

    def test_bag_sets_cover_edges(self):
        h = two_triangles()
        for order in all_veos(h):
            bags = bag_sets_of_veo(h, order)
            for edge in h.edges:
                assert any(edge <= bag for bag in bags)

    def test_all_tree_decompositions_objects(self):
        decompositions = all_tree_decompositions(four_cycle())
        assert len(decompositions) == 2
        for td in decompositions:
            assert td.is_non_redundant()
            assert td.covers_vertex_connectivity()

    def test_two_triangles_best_decomposition_has_triangle_bags(self):
        """The Q△△ query decomposes into two triangle bags (Section 1.1)."""
        families = enumerate_bag_families(two_triangles())
        best = min(families, key=lambda fam: max(len(bag) for bag in fam))
        assert max(len(bag) for bag in best) == 3
