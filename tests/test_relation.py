"""Tests for the Relation data structure and its operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.db import Relation


def small_relation(schema):
    values = st.integers(min_value=0, max_value=4)
    row = st.tuples(*([values] * len(schema)))
    return st.lists(row, max_size=25).map(lambda rows: Relation(schema, rows))


class TestBasics:
    def test_schema_validation(self):
        with pytest.raises(ValueError):
            Relation(("X", "X"), [])
        with pytest.raises(ValueError):
            Relation(("X", "Y"), [(1,)])

    def test_set_semantics(self):
        r = Relation(("X", "Y"), [(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r

    def test_equality_is_schema_order_insensitive(self):
        a = Relation(("X", "Y"), [(1, 2)])
        b = Relation(("Y", "X"), [(2, 1)])
        assert a == b

    def test_column_values_and_domain(self):
        r = Relation(("X", "Y"), [(1, 2), (3, 2)])
        assert r.column_values("X") == {1, 3}
        assert r.active_domain() == {1, 2, 3}
        with pytest.raises(KeyError):
            r.column_values("Z")


class TestOperators:
    def test_project(self):
        r = Relation(("X", "Y"), [(1, 2), (1, 3)])
        assert r.project(["X"]).rows == {(1,)}
        assert r.project(["Y", "X"]).rows == {(2, 1), (3, 1)}

    def test_select_by_mapping_and_predicate(self):
        r = Relation(("X", "Y"), [(1, 2), (3, 4)])
        assert r.select({"X": 1}).rows == {(1, 2)}
        assert r.select(lambda row: row["Y"] > 2).rows == {(3, 4)}

    def test_rename(self):
        r = Relation(("X", "Y"), [(1, 2)])
        assert r.rename({"X": "A"}).schema == ("A", "Y")

    def test_join_matches_nested_loop(self):
        r = Relation(("X", "Y"), [(1, 2), (2, 3), (4, 4)])
        s = Relation(("Y", "Z"), [(2, 10), (3, 11), (3, 12)])
        joined = r.join(s)
        expected = {
            (x, y, z)
            for (x, y) in r.rows
            for (y2, z) in s.rows
            if y == y2
        }
        assert joined.rows == expected
        assert joined.schema == ("X", "Y", "Z")

    @given(small_relation(("X", "Y")), small_relation(("Y", "Z")))
    def test_join_property(self, r, s):
        joined = r.join(s)
        expected = {
            (x, y, z)
            for (x, y) in r.rows
            for (y2, z) in s.rows
            if y == y2
        }
        assert joined.rows == expected

    @given(small_relation(("X", "Y")), small_relation(("Y", "Z")))
    def test_semijoin_property(self, r, s):
        reduced = r.semijoin(s)
        y_values = {y for (y, _) in s.rows}
        assert reduced.rows == {(x, y) for (x, y) in r.rows if y in y_values}
        anti = r.antijoin(s)
        assert anti.rows == r.rows - reduced.rows

    def test_join_disjoint_schemas_is_cross(self):
        r = Relation(("X",), [(1,), (2,)])
        s = Relation(("Y",), [(5,)])
        assert r.join(s).rows == {(1, 5), (2, 5)}
        assert r.cross(s) == r.join(s)
        with pytest.raises(ValueError):
            r.cross(r)

    def test_union_intersect(self):
        a = Relation(("X", "Y"), [(1, 2)])
        b = Relation(("Y", "X"), [(2, 1), (5, 6)])
        assert len(a.union(b)) == 2
        assert a.intersect(b).rows == {(1, 2)}
        with pytest.raises(ValueError):
            a.union(Relation(("X", "Z"), []))

    def test_semijoin_no_shared_variables(self):
        r = Relation(("X",), [(1,)])
        s = Relation(("Y",), [(2,)])
        assert r.semijoin(s) == r
        assert r.semijoin(Relation(("Y",), [])).is_empty()


class TestDegreesAndPartitioning:
    def test_degree_definition_e9(self):
        r = Relation(("X", "Y"), [(1, 1), (1, 2), (1, 3), (2, 1)])
        assert r.degree(["Y"], ["X"]) == 3
        assert r.degree_map(["Y"], ["X"])[(1,)] == 3
        assert r.degree_map(["Y"], ["X"])[(2,)] == 1
        assert r.degree(["X"], []) == 2  # two distinct X values overall

    def test_heavy_light_split(self):
        rows = [(1, i) for i in range(5)] + [(2, 0), (3, 0)]
        r = Relation(("X", "Y"), rows)
        heavy, light = r.heavy_light_split(["X"], threshold=2)
        assert heavy.rows == {(1,)}
        assert light.rows == {(2, 0), (3, 0)}
        # Every original row is accounted for by exactly one part.
        heavy_keys = {row[0] for row in heavy.rows}
        assert all((row[0] in heavy_keys) != (row in light.rows) for row in rows)

    def test_heavy_light_split_threshold_extremes(self):
        r = Relation(("X", "Y"), [(1, 2), (3, 4)])
        heavy, light = r.heavy_light_split(["X"], threshold=0)
        assert light.is_empty() and len(heavy) == 2
        heavy, light = r.heavy_light_split(["X"], threshold=10)
        assert heavy.is_empty() and light == r


class TestMatrixConversion:
    def test_roundtrip(self):
        r = Relation(("X", "Y"), [(1, 10), (2, 20), (1, 20)])
        matrix, rows, cols = r.to_matrix(["X"], ["Y"])
        assert matrix.sum() == 3
        back = Relation.from_matrix(matrix, ["X"], ["Y"], rows, cols)
        assert back == r

    def test_shared_index_alignment(self):
        r = Relation(("X", "Y"), [(1, 10), (2, 20)])
        s = Relation(("Y", "Z"), [(10, 5), (30, 6)])
        _, _, y_index = r.to_matrix(["X"], ["Y"])
        s_matrix, _, _ = s.to_matrix(["Y"], ["Z"], row_index=y_index)
        # The Y value 30 is unknown to the shared index and is dropped.
        assert s_matrix.shape[0] == len(y_index)
        assert s_matrix.sum() == 1

    def test_boolean_product_equals_join_project(self):
        r = Relation(("X", "Y"), [(0, 0), (0, 1), (1, 1)])
        s = Relation(("Y", "Z"), [(0, 7), (1, 8)])
        r_matrix, x_index, y_index = r.to_matrix(["X"], ["Y"])
        s_matrix, _, z_index = s.to_matrix(["Y"], ["Z"], row_index=y_index)
        product = (r_matrix.astype(int) @ s_matrix.astype(int)) > 0
        via_matrix = Relation.from_matrix(product, ["X"], ["Z"], x_index, z_index)
        assert via_matrix == r.join(s).project(["X", "Z"])
