"""The physical-operator IR: a hashable DAG of execution operators.

Every strategy in the library — naive pairwise joins, GenericJoin,
Yannakakis, and the paper's ω-query plans, plus the triangle/4-cycle/clique
specializations — *lowers* to this one representation
(:mod:`repro.exec.lower`) and executes on one instrumented virtual machine
(:mod:`repro.exec.vm`).  An operator node declares

* its ``children`` (the DAG edges),
* its ``schema`` — the output column names, inferred at construction, so
  the whole program is type-checked before anything executes, and
* its ``skey`` — a *name-insensitive* structural key.

The structural key encodes variable names only through their **positions**
in the child schemas.  Two nodes with equal ``skey`` therefore compute the
same relation up to a positional renaming of the output columns — this is
the invariant behind cross-query sharing: when two isomorphic queries in an
:meth:`~repro.api.QueryEngine.ask_many` batch semijoin the same relation
the same way under different variable names, both subplans carry the same
``skey`` and the second one is served from the VM's bounded
intermediate-result cache.

Nodes are frozen dataclasses: equality and hashing are structural (and
name-sensitive, which within-program common-subexpression elimination
relies on); ``schema``/``skey``/``children`` are derived attributes
computed once in ``__post_init__``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

Schema = Tuple[str, ...]
StructuralKey = Tuple


@dataclass(frozen=True)
class MorselSpec:
    """How an operator may be split into data-parallel morsels.

    ``child`` is the index (into ``children``) of the *probe side* whose
    rows can be partitioned into contiguous chunks, each executed against
    the unchanged remaining operands and recombined.  When ``dedup`` is
    true the chunk outputs may overlap (e.g. projections of different rows
    collapsing to the same tuple) and recombination must deduplicate;
    otherwise the chunk outputs are disjoint and concatenation suffices.
    """

    child: int
    dedup: bool


def _positions(schema: Schema, variables: Schema, what: str) -> Tuple[int, ...]:
    try:
        return tuple(schema.index(v) for v in variables)
    except ValueError:
        missing = [v for v in variables if v not in schema]
        raise ValueError(f"{what}: variables {missing} not in schema {schema}") from None


def _shared_pairs(left: Schema, right: Schema) -> Tuple[Tuple[int, int], ...]:
    """(left position, right position) for every shared variable, in left order."""
    return tuple(
        (i, right.index(v)) for i, v in enumerate(left) if v in right
    )


def _operator_inputs(node: "Operator") -> Tuple["Operator", ...]:
    """The operator-valued declared fields, before ``children`` is derived."""
    inputs: List[Operator] = []
    for field in fields(node):  # type: ignore[arg-type]
        value = getattr(node, field.name, None)
        if isinstance(value, Operator):
            inputs.append(value)
        elif isinstance(value, tuple):
            inputs.extend(item for item in value if isinstance(item, Operator))
    return tuple(inputs)


def _describe_inputs(inputs: Tuple["Operator", ...]) -> str:
    if not inputs:
        return "none"
    return "; ".join(
        "bool" if node.boolean else f"({', '.join(node.schema)})"
        for node in inputs
    )


def _with_input_context(post_init):
    """Wrap a ``__post_init__`` so validation errors carry input schemas.

    The construction-time checks raise from deep helpers that only see a
    fragment of the node; every subclass's ``__post_init__`` is wrapped at
    class-creation time so the surfaced message always names the operator
    class and the schemas of its operand subplans.
    """

    @functools.wraps(post_init)
    def wrapped(self) -> None:
        try:
            post_init(self)
        except ValueError as error:
            raise ValueError(
                f"{error} [in {type(self).__name__}; input schemas: "
                f"{_describe_inputs(_operator_inputs(self))}]"
            ) from None

    return wrapped


class Operator:
    """Base class for IR nodes.

    Subclasses are frozen dataclasses; ``__post_init__`` populates the
    derived attributes below via ``object.__setattr__``.
    """

    #: Output column names (empty for Boolean-valued operators).
    schema: Schema
    #: Child operators, in evaluation order.
    children: Tuple["Operator", ...]
    #: Name-insensitive structural key (see module docstring).
    skey: StructuralKey
    #: Whether the operator produces a Boolean instead of a relation.
    boolean: bool = False
    #: Whether the operator produces a scalar (an ``int``) instead of a
    #: relation — the counting sink.  Scalar operators, like Boolean ones,
    #: can only appear at the root of a program.
    scalar: bool = False
    #: Index into ``children`` of the operand whose *emptiness* alone
    #: already decides an empty output (``None`` when no child has that
    #: power).  This is the metadata behind the VM's lazy short-circuits:
    #: the sequential executor skips the remaining children, and the
    #: parallel scheduler completes the operator early and cancels the
    #: now-doomed sibling subtrees.
    empty_short_circuit: Optional[int] = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        post_init = cls.__dict__.get("__post_init__")
        if post_init is not None:
            cls.__post_init__ = _with_input_context(post_init)

    def _derive(
        self, schema: Schema, children: Tuple["Operator", ...], skey: StructuralKey
    ) -> None:
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "skey", skey)

    def validate(self, program: Optional["Program"] = None) -> None:
        """Re-run the construction-time checks (and re-derive the schema).

        Used by the static plan verifier: a node rebuilt by a rewrite
        pass, or mutated through ``object.__setattr__``, re-proves its
        own well-formedness here.  Errors carry the input schemas (via
        the wrapped ``__post_init__``) and — when a ``program`` is given
        — the operator's ``#id`` position in ``program.describe()``.
        """
        post_init = getattr(self, "__post_init__", None)
        if post_init is None:  # pragma: no cover - every subclass has one
            return
        try:
            post_init()
        except ValueError as error:
            message = str(error)
            if program is not None:
                node_id = program.node_ids().get(self)
                if node_id is not None:
                    message = (
                        f"operator #{node_id} of the program failed "
                        f"validation: {message}"
                    )
            raise ValueError(message) from None

    @property
    def variables(self) -> frozenset:
        return frozenset(self.schema)

    def label(self) -> str:  # pragma: no cover - overridden by subclasses
        return type(self).__name__

    def kind(self) -> str:
        """A short lower-case operator-kind tag (used in traces and tests)."""
        return type(self).__name__.lower()

    def morsel_spec(self) -> Optional[MorselSpec]:
        """How (if at all) this operator partitions into parallel morsels.

        ``None`` means the operator must execute as one unit.  Overridden
        by the data-parallel operators (Join, Semijoin/MultiSemijoin,
        Antijoin, deduplicating Project, GroupedMatMul).
        """
        return None


def _require_relational(node: Operator, what: str) -> None:
    if node.boolean:
        raise ValueError(f"{what} requires a relational input, got {node.kind()}")


def _require_boolean(node: Operator, what: str) -> None:
    if not node.boolean:
        raise ValueError(f"{what} requires Boolean inputs, got {node.kind()}")


# ----------------------------------------------------------------------
# Leaf
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scan(Operator):
    """Read one database relation, columns renamed positionally to ``variables``."""

    relation: str
    variables_out: Schema

    def __post_init__(self) -> None:
        if len(set(self.variables_out)) != len(self.variables_out):
            raise ValueError(f"duplicate scan variables {self.variables_out}")
        self._derive(
            schema=tuple(self.variables_out),
            children=(),
            skey=("scan", self.relation, len(self.variables_out)),
        )

    def label(self) -> str:
        return f"Scan {self.relation}({', '.join(self.schema)})"


# ----------------------------------------------------------------------
# Unary relational operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Project(Operator):
    """Project onto ``variables_out`` (set semantics: duplicates collapse)."""

    child: Operator
    variables_out: Schema

    def __post_init__(self) -> None:
        _require_relational(self.child, "Project")
        positions = _positions(self.child.schema, self.variables_out, "Project")
        self._derive(
            schema=tuple(self.variables_out),
            children=(self.child,),
            skey=("project", self.child.skey, positions),
        )

    def label(self) -> str:
        return f"Project[{', '.join(self.schema) or '()'}]"

    def morsel_spec(self) -> Optional[MorselSpec]:
        # Chunks of the child may project onto the same tuple, so the
        # recombination deduplicates.  Nullary projections reduce to an
        # emptiness test and are not worth partitioning.
        return MorselSpec(child=0, dedup=True) if self.schema else None


@dataclass(frozen=True)
class Distinct(Project):
    """Distinct projection onto the query's output variables.

    Semantically identical to :class:`Project` (all relations here use set
    semantics) and it inherits Project's structural key, so an enumeration
    program shares cached intermediates with any projection computing the
    same tuples — but it is a distinct node class with its own label/kind,
    marking the *output sink* of a ``select`` program in traces and
    ``explain`` output.
    """

    def label(self) -> str:
        return f"Distinct[{', '.join(self.schema) or '()'}]"


@dataclass(frozen=True)
class Restrict(Operator):
    """Keep rows whose ``variable`` value appears in a column of ``source``.

    The restriction set is *data-dependent*: it is the active domain of
    ``source_variable`` in the ``source`` operator's output (e.g. the heavy
    values computed by a :class:`HeavyPart`).
    """

    child: Operator
    variable: str
    source: Operator
    source_variable: str
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.child, "Restrict")
        _require_relational(self.source, "Restrict source")
        (position,) = _positions(self.child.schema, (self.variable,), "Restrict")
        (source_position,) = _positions(
            self.source.schema, (self.source_variable,), "Restrict source"
        )
        self._derive(
            schema=self.child.schema,
            children=(self.child, self.source),
            skey=(
                "restrict",
                self.child.skey,
                position,
                self.source.skey,
                source_position,
            ),
        )

    def label(self) -> str:
        return f"Restrict[{self.variable}]"


@dataclass(frozen=True)
class HeavyPart(Operator):
    """Bindings of ``given`` whose degree into the rest exceeds ``threshold``.

    The database interpretation of the proof-sequence decomposition step
    (Figure 1): the output is the heavy keys *projected onto* ``given``.
    """

    child: Operator
    given: Schema
    threshold: int

    def __post_init__(self) -> None:
        _require_relational(self.child, "HeavyPart")
        positions = _positions(self.child.schema, self.given, "HeavyPart")
        self._derive(
            schema=tuple(self.given),
            children=(self.child,),
            skey=("heavy", self.child.skey, positions, self.threshold),
        )

    def label(self) -> str:
        return f"Heavy[{', '.join(self.given)} > {self.threshold}]"


@dataclass(frozen=True)
class LightPart(Operator):
    """The full rows whose ``given`` binding is *not* heavy (complement of HeavyPart)."""

    child: Operator
    given: Schema
    threshold: int

    def __post_init__(self) -> None:
        _require_relational(self.child, "LightPart")
        positions = _positions(self.child.schema, self.given, "LightPart")
        self._derive(
            schema=self.child.schema,
            children=(self.child,),
            skey=("light", self.child.skey, positions, self.threshold),
        )

    def label(self) -> str:
        return f"Light[{', '.join(self.given)} <= {self.threshold}]"


# ----------------------------------------------------------------------
# Binary / n-ary relational operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Join(Operator):
    """Natural join; output schema is left's columns then right's new columns."""

    left: Operator
    right: Operator
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.left, "Join")
        _require_relational(self.right, "Join")
        pairs = _shared_pairs(self.left.schema, self.right.schema)
        extras = tuple(v for v in self.right.schema if v not in self.left.schema)
        self._derive(
            schema=self.left.schema + extras,
            children=(self.left, self.right),
            skey=("join", self.left.skey, self.right.skey, pairs),
        )

    def label(self) -> str:
        return "Join"

    def morsel_spec(self) -> Optional[MorselSpec]:
        # Probe-side rows are distinct and the chunks partition them, so
        # the per-chunk join outputs are disjoint: concatenate.
        return MorselSpec(child=0, dedup=False)


@dataclass(frozen=True)
class Semijoin(Operator):
    """Keep left rows whose shared-variable projection appears in the reducer."""

    child: Operator
    reducer: Operator
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.child, "Semijoin")
        _require_relational(self.reducer, "Semijoin")
        pairs = _shared_pairs(self.child.schema, self.reducer.schema)
        self._derive(
            schema=self.child.schema,
            children=(self.child, self.reducer),
            skey=("semijoin", self.child.skey, self.reducer.skey, pairs),
        )

    def label(self) -> str:
        return "Semijoin"

    def morsel_spec(self) -> Optional[MorselSpec]:
        return MorselSpec(child=0, dedup=False)


@dataclass(frozen=True)
class Antijoin(Operator):
    """Keep left rows whose shared-variable projection does NOT appear in the reducer."""

    child: Operator
    reducer: Operator
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.child, "Antijoin")
        _require_relational(self.reducer, "Antijoin")
        pairs = _shared_pairs(self.child.schema, self.reducer.schema)
        self._derive(
            schema=self.child.schema,
            children=(self.child, self.reducer),
            skey=("antijoin", self.child.skey, self.reducer.skey, pairs),
        )

    def label(self) -> str:
        return "Antijoin"

    def morsel_spec(self) -> Optional[MorselSpec]:
        return MorselSpec(child=0, dedup=False)


@dataclass(frozen=True)
class MultiSemijoin(Operator):
    """A fused chain of semijoins against independent reducers.

    Produced by the optimizer's semijoin-chain fusion pass
    (:func:`repro.exec.optimize.fuse_semijoins`): one pass over the target
    instead of one materialization per reducer.  Semantically identical to
    folding :class:`Semijoin` left-to-right because the reducers do not
    depend on the partially reduced target.
    """

    child: Operator
    reducers: Tuple[Operator, ...]
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.child, "MultiSemijoin")
        if not self.reducers:
            raise ValueError("MultiSemijoin needs at least one reducer")
        for reducer in self.reducers:
            _require_relational(reducer, "MultiSemijoin")
        per_reducer = tuple(
            (reducer.skey, _shared_pairs(self.child.schema, reducer.schema))
            for reducer in self.reducers
        )
        self._derive(
            schema=self.child.schema,
            children=(self.child,) + tuple(self.reducers),
            skey=("multisemijoin", self.child.skey, per_reducer),
        )

    def label(self) -> str:
        return f"MultiSemijoin[{len(self.reducers)} reducers]"

    def morsel_spec(self) -> Optional[MorselSpec]:
        return MorselSpec(child=0, dedup=False)


@dataclass(frozen=True)
class Union(Operator):
    """Set union of relations over the same variable set (any column order)."""

    inputs: Tuple[Operator, ...]

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("Union needs at least one input")
        head = self.inputs[0]
        _require_relational(head, "Union")
        aligned = []
        for node in self.inputs:
            _require_relational(node, "Union")
            if set(node.schema) != set(head.schema):
                raise ValueError(
                    f"Union over different variable sets: {node.schema} vs {head.schema}"
                )
            aligned.append((node.skey, _positions(node.schema, head.schema, "Union")))
        self._derive(
            schema=head.schema,
            children=tuple(self.inputs),
            skey=("union", tuple(aligned)),
        )

    def label(self) -> str:
        return f"Union[{len(self.inputs)}]"


# ----------------------------------------------------------------------
# Matrix-multiplication operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatMul(Operator):
    """One Boolean matrix product eliminating ``inner_variables``.

    The left operand is encoded over ``row_variables × inner_variables``,
    the right over ``inner_variables × col_variables``; the nonzero entries
    of the product decode to the output relation over rows + columns.
    """

    left: Operator
    right: Operator
    row_variables: Schema
    inner_variables: Schema
    col_variables: Schema
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.left, "MatMul")
        _require_relational(self.right, "MatMul")
        row_positions = _positions(self.left.schema, self.row_variables, "MatMul rows")
        inner_left = _positions(self.left.schema, self.inner_variables, "MatMul inner")
        inner_right = _positions(self.right.schema, self.inner_variables, "MatMul inner")
        col_positions = _positions(self.right.schema, self.col_variables, "MatMul cols")
        self._derive(
            schema=tuple(self.row_variables) + tuple(self.col_variables),
            children=(self.left, self.right),
            skey=(
                "matmul",
                self.left.skey,
                self.right.skey,
                row_positions,
                inner_left,
                inner_right,
                col_positions,
            ),
        )

    def label(self) -> str:
        return (
            f"MatMul[{','.join(self.row_variables)} ; "
            f"{','.join(self.inner_variables)} ; {','.join(self.col_variables)}]"
        )


@dataclass(frozen=True)
class GroupedMatMul(Operator):
    """A Boolean matrix product per binding of shared group-by variables.

    Realizes an ω-query-plan MM elimination step ``MM(first; second;
    block | group_by)``: for each binding of ``group_variables`` (shared by
    both sides) the two sides are multiplied as matrices over
    ``row_variables × inner_variables`` and ``inner_variables ×
    col_variables``; side-specific group-by variables ride along on the
    outer dimensions (they are baked into row/col variables by lowering).
    """

    left: Operator
    right: Operator
    row_variables: Schema
    inner_variables: Schema
    col_variables: Schema
    group_variables: Schema
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.left, "GroupedMatMul")
        _require_relational(self.right, "GroupedMatMul")
        row_positions = _positions(self.left.schema, self.row_variables, "GroupedMatMul rows")
        inner_left = _positions(self.left.schema, self.inner_variables, "GroupedMatMul inner")
        inner_right = _positions(self.right.schema, self.inner_variables, "GroupedMatMul inner")
        col_positions = _positions(self.right.schema, self.col_variables, "GroupedMatMul cols")
        group_left = _positions(self.left.schema, self.group_variables, "GroupedMatMul group")
        group_right = _positions(self.right.schema, self.group_variables, "GroupedMatMul group")
        self._derive(
            schema=(
                tuple(self.row_variables)
                + tuple(self.col_variables)
                + tuple(self.group_variables)
            ),
            children=(self.left, self.right),
            skey=(
                "grouped_matmul",
                self.left.skey,
                self.right.skey,
                row_positions,
                inner_left,
                inner_right,
                col_positions,
                group_left,
                group_right,
            ),
        )

    def label(self) -> str:
        group = ",".join(self.group_variables)
        return (
            f"GroupedMatMul[{','.join(self.row_variables)} ; "
            f"{','.join(self.inner_variables)} ; {','.join(self.col_variables)}"
            + (f" | {group}]" if group else "]")
        )

    def morsel_spec(self) -> Optional[MorselSpec]:
        # A group's left rows may be split across chunks; the same output
        # (row, col, group) triple can then be produced by several chunks,
        # so recombination deduplicates.
        return MorselSpec(child=0, dedup=True)


# ----------------------------------------------------------------------
# Worst-case-optimal search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Wcoj(Operator):
    """GenericJoin: one nested intersection loop per variable.

    The classic worst-case optimal join is an inherently row-at-a-time
    backtracking search; it lowers to a single operator whose VM
    implementation owns the loop (with early termination when
    ``find_all`` is false).
    """

    inputs: Tuple[Operator, ...]
    variable_order: Schema
    find_all: bool

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("Wcoj needs at least one input")
        covered: set = set()
        for node in self.inputs:
            _require_relational(node, "Wcoj")
            covered |= set(node.schema)
        if set(self.variable_order) != covered:
            raise ValueError(
                f"Wcoj order {self.variable_order} must cover exactly the "
                f"input variables {sorted(covered)}"
            )
        per_variable = tuple(
            tuple(
                (i, node.schema.index(v))
                for i, node in enumerate(self.inputs)
                if v in node.schema
            )
            for v in self.variable_order
        )
        self._derive(
            schema=tuple(self.variable_order),
            children=tuple(self.inputs),
            skey=(
                "wcoj",
                tuple(node.skey for node in self.inputs),
                per_variable,
                self.find_all,
            ),
        )

    def label(self) -> str:
        mode = "all" if self.find_all else "first"
        return f"Wcoj[{' -> '.join(self.variable_order)}; {mode}]"


# ----------------------------------------------------------------------
# Output sinks (the engine's count / select verbs)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Count(Operator):
    """The number of distinct ``variables_out`` tuples of the child (an int).

    The counting sink: evaluates to a scalar without materializing the
    projected relation — the columnar backend counts unique code rows with
    one ``np.unique`` over the stacked code arrays.  An empty
    ``variables_out`` (Boolean-head query) counts the nullary projection:
    ``1`` when the child is nonempty, else ``0``.
    """

    child: Operator
    variables_out: Schema
    scalar = True
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.child, "Count")
        positions = _positions(self.child.schema, self.variables_out, "Count")
        self._derive(
            schema=(),
            children=(self.child,),
            skey=("count", self.child.skey, positions),
        )

    def label(self) -> str:
        return f"Count[{', '.join(self.variables_out) or '()'}]"


#: Enumeration orders an :class:`Enumerate` sink may declare.  ``sorted``
#: is the deterministic total order the API has always promised;
#: ``stream`` emits tuples in discovery order with constant delay;
#: ``ranked`` emits tuples *in* the sorted order incrementally — the
#: any-k frontier-heap enumeration, so a sorted ``limit=k`` costs
#: ~``exists`` + O(k log n) instead of a full scan.
ENUMERATION_ORDERS = ("sorted", "stream", "ranked")


@dataclass(frozen=True)
class Enumerate(Operator):
    """The enumeration sink: where a ``select`` program emits output tuples.

    Two modes share the node:

    * **Pass-through** (no ``frontiers``): the child — typically a
      :class:`Distinct` — already holds the distinct output tuples; this
      node marks where the engine's
      :class:`~repro.api.results.ResultSet` attaches to stream them.
    * **Streaming** (``frontiers`` non-empty): the child is the *root* of
      a calibrated Yannakakis join tree and ``frontiers`` are the
      remaining calibrated relations in top-down join order.  The VM does
      not materialize the enumeration join; it hands back a pull-driven
      cursor that chunks the root, joins each chunk through the frontiers
      with early projection onto ``variables_out`` plus still-needed join
      keys, and — when ``order == "stream"`` — stops as soon as ``limit``
      distinct tuples have been produced.

    ``order == "ranked"`` selects the any-k enumeration instead: the
    cursor (:class:`~repro.exec.vm.RankedEnumerationStream`) emits the
    output tuples in the deterministic sorted order directly, popping the
    globally next tuple off a frontier heap.  The ranking key spec is
    ``variables_out`` itself — the lexicographic value order over the
    output columns — and ``parents`` carries the join-tree shape the heap
    expansions need: for each frontier, the index of its tree parent in
    the combined ``[child, *frontiers]`` sequence (parents always precede
    children).  Empty ``parents`` with frontiers present means the VM
    derives parents from shared variables (hand-built nodes).

    ``limit`` and ``order`` are part of the structural key, so programs
    enumerating different prefixes never collide in any cache; the node
    itself is exempt from the VM's result cache either way — what caching
    shares are its *children*, the calibrated (limit-independent) reducer
    state.
    """

    child: Operator
    frontiers: Tuple[Operator, ...] = ()
    variables_out: Optional[Schema] = None
    limit: Optional[int] = None
    order: str = "sorted"
    parents: Tuple[int, ...] = ()
    empty_short_circuit = 0

    def __post_init__(self) -> None:
        _require_relational(self.child, "Enumerate")
        for frontier in self.frontiers:
            _require_relational(frontier, "Enumerate frontier")
        if self.order not in ENUMERATION_ORDERS:
            raise ValueError(
                f"Enumerate order must be one of {ENUMERATION_ORDERS}, "
                f"got {self.order!r}"
            )
        if self.limit is not None and self.limit < 0:
            raise ValueError("Enumerate limit must be non-negative")
        if self.parents:
            if len(self.parents) != len(self.frontiers):
                raise ValueError(
                    f"Enumerate parents {self.parents} must name one parent "
                    f"per frontier ({len(self.frontiers)} frontiers)"
                )
            for index, parent in enumerate(self.parents):
                if not 0 <= parent <= index:
                    raise ValueError(
                        f"Enumerate parent {parent} of frontier {index} must "
                        "point at an earlier sequence position"
                    )
        # The virtual schema of the top-down join (root columns, then each
        # frontier's new columns in join order) — outputs must live in it.
        joined = tuple(self.child.schema)
        shared = []
        for frontier in self.frontiers:
            shared.append(_shared_pairs(joined, tuple(frontier.schema)))
            joined += tuple(v for v in frontier.schema if v not in joined)
        outputs = (
            tuple(self.variables_out)
            if self.variables_out is not None
            else tuple(self.child.schema)
        )
        positions = _positions(joined, outputs, "Enumerate")
        self._derive(
            schema=outputs,
            children=(self.child,) + tuple(self.frontiers),
            skey=(
                "enumerate",
                self.child.skey,
                tuple(f.skey for f in self.frontiers),
                tuple(shared),
                positions,
                self.order,
                self.limit,
                self.parents,
            ),
        )

    @property
    def streaming(self) -> bool:
        """Whether the VM should hand back a pull cursor instead of a relation.

        ``sorted`` delivery always materializes (a sorted *prefix* is the
        result set's bounded ``nsmallest`` over the materialized output);
        ``stream``/``ranked`` — and any frontier node — hand back a cursor.
        """
        return bool(self.frontiers) or self.order != "sorted"

    def label(self) -> str:
        mode = ""
        if self.streaming:
            bound = "" if self.limit is None else f" limit={self.limit}"
            mode = f"; {self.order}{bound}"
        return f"Enumerate[{', '.join(self.schema) or '()'}{mode}]"


# ----------------------------------------------------------------------
# Boolean-valued operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NonEmpty(Operator):
    """``True`` iff the child relation has at least one row."""

    child: Operator
    boolean = True

    def __post_init__(self) -> None:
        _require_relational(self.child, "NonEmpty")
        self._derive(schema=(), children=(self.child,), skey=("nonempty", self.child.skey))

    def label(self) -> str:
        return "NonEmpty"


@dataclass(frozen=True)
class Any_(Operator):
    """Boolean OR over Boolean children (evaluated left-to-right, short-circuit)."""

    inputs: Tuple[Operator, ...]
    boolean = True

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("Any needs at least one input")
        for node in self.inputs:
            _require_boolean(node, "Any")
        self._derive(
            schema=(),
            children=tuple(self.inputs),
            skey=("any", tuple(node.skey for node in self.inputs)),
        )

    def kind(self) -> str:
        return "any"

    def label(self) -> str:
        return f"Any[{len(self.inputs)}]"


@dataclass(frozen=True)
class All_(Operator):
    """Boolean AND over Boolean children (short-circuit); ``All[()]`` is ``True``."""

    inputs: Tuple[Operator, ...]
    boolean = True

    def __post_init__(self) -> None:
        for node in self.inputs:
            _require_boolean(node, "All")
        self._derive(
            schema=(),
            children=tuple(self.inputs),
            skey=("all", tuple(node.skey for node in self.inputs)),
        )

    def kind(self) -> str:
        return "all"

    def label(self) -> str:
        return f"All[{len(self.inputs)}]"


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
@dataclass
class Program:
    """A lowered query: one root operator plus the DAG hanging off it."""

    root: Operator
    #: Human-readable origin tag ("naive", "yannakakis", "omega-plan", ...).
    source: str = "unknown"

    def nodes(self) -> List[Operator]:
        """All distinct operators in topological order (children first)."""
        seen: Dict[Operator, None] = {}

        def visit(node: Operator) -> None:
            if node in seen:
                return
            for child in node.children:
                visit(child)
            seen[node] = None

        visit(self.root)
        return list(seen)

    def node_ids(self) -> Dict[Operator, int]:
        """A stable 1-based numbering of the DAG nodes (topological order)."""
        return {node: i + 1 for i, node in enumerate(self.nodes())}

    def describe(self) -> str:
        """Render the DAG, one numbered operator per line."""
        ids = self.node_ids()
        lines = []
        for node, node_id in ids.items():
            refs = ", ".join(f"#{ids[child]}" for child in node.children)
            if node.boolean:
                out = "bool"
            elif node.scalar:
                out = "int"
            else:
                out = f"({', '.join(node.schema)})"
            suffix = f"({refs}) -> {out}" if refs else f" -> {out}"
            lines.append(f"#{node_id} {node.label()}{suffix}")
        return "\n".join(lines)

    def rename(self, mapping: Mapping[str, str]) -> "Program":
        """The same program over renamed variables (relation names unchanged)."""
        memo: Dict[Operator, Operator] = {}
        return Program(rename_operator(self.root, mapping, memo), source=self.source)

    def __len__(self) -> int:
        return len(self.nodes())


def _rename_schema(schema: Schema, mapping: Mapping[str, str]) -> Schema:
    return tuple(mapping.get(v, v) for v in schema)


def rename_operator(
    node: Operator, mapping: Mapping[str, str], memo: Dict[Operator, Operator]
) -> Operator:
    """Rebuild an operator DAG with variables renamed through ``mapping``."""
    if node in memo:
        return memo[node]
    m = mapping

    def r(child: Operator) -> Operator:
        return rename_operator(child, mapping, memo)

    if isinstance(node, Scan):
        renamed: Operator = Scan(node.relation, _rename_schema(node.variables_out, m))
    elif isinstance(node, Distinct):
        renamed = Distinct(r(node.child), _rename_schema(node.variables_out, m))
    elif isinstance(node, Project):
        renamed = Project(r(node.child), _rename_schema(node.variables_out, m))
    elif isinstance(node, Restrict):
        renamed = Restrict(
            r(node.child),
            m.get(node.variable, node.variable),
            r(node.source),
            m.get(node.source_variable, node.source_variable),
        )
    elif isinstance(node, HeavyPart):
        renamed = HeavyPart(r(node.child), _rename_schema(node.given, m), node.threshold)
    elif isinstance(node, LightPart):
        renamed = LightPart(r(node.child), _rename_schema(node.given, m), node.threshold)
    elif isinstance(node, Join):
        renamed = Join(r(node.left), r(node.right))
    elif isinstance(node, Semijoin):
        renamed = Semijoin(r(node.child), r(node.reducer))
    elif isinstance(node, Antijoin):
        renamed = Antijoin(r(node.child), r(node.reducer))
    elif isinstance(node, MultiSemijoin):
        renamed = MultiSemijoin(r(node.child), tuple(r(x) for x in node.reducers))
    elif isinstance(node, Union):
        renamed = Union(tuple(r(x) for x in node.inputs))
    elif isinstance(node, MatMul):
        renamed = MatMul(
            r(node.left),
            r(node.right),
            _rename_schema(node.row_variables, m),
            _rename_schema(node.inner_variables, m),
            _rename_schema(node.col_variables, m),
        )
    elif isinstance(node, GroupedMatMul):
        renamed = GroupedMatMul(
            r(node.left),
            r(node.right),
            _rename_schema(node.row_variables, m),
            _rename_schema(node.inner_variables, m),
            _rename_schema(node.col_variables, m),
            _rename_schema(node.group_variables, m),
        )
    elif isinstance(node, Wcoj):
        renamed = Wcoj(
            tuple(r(x) for x in node.inputs),
            _rename_schema(node.variable_order, m),
            node.find_all,
        )
    elif isinstance(node, Count):
        renamed = Count(r(node.child), _rename_schema(node.variables_out, m))
    elif isinstance(node, Enumerate):
        renamed = Enumerate(
            r(node.child),
            tuple(r(x) for x in node.frontiers),
            (
                None
                if node.variables_out is None
                else _rename_schema(node.variables_out, m)
            ),
            node.limit,
            node.order,
            node.parents,
        )
    elif isinstance(node, NonEmpty):
        renamed = NonEmpty(r(node.child))
    elif isinstance(node, Any_):
        renamed = Any_(tuple(r(x) for x in node.inputs))
    elif isinstance(node, All_):
        renamed = All_(tuple(r(x) for x in node.inputs))
    else:  # pragma: no cover - new operators must be added here
        raise TypeError(f"rename_operator: unknown operator {type(node).__name__}")
    memo[node] = renamed
    return renamed
