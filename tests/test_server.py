"""The asyncio query server: concurrency, admission control, deadlines, drain.

Tests drive a real :class:`QueryServer` on an ephemeral loopback port
through :class:`QueryClient` (or raw sockets for protocol-level checks).
Load is made deterministic with gated/delayed engine subclasses rather
than wall-clock races: the gate holds executor threads inside ``_ask``
until the test has observed the state it wants.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.api.engine import PROTOCOL_VERSION, QueryEngine
from repro.db import Database, Relation
from repro.db.query import parse_query
from repro.server import QueryClient, QueryServer, ServerError, encode_message

EDGES = [(1, 2), (2, 3), (3, 1), (2, 1), (3, 4)]
COUNT_CHAIN = "COUNT Q(X, Z) :- R(X, Y), S(Y, Z)"


def make_database():
    db = Database()
    for name in ("R", "S"):
        db[name] = Relation.from_pairs(("a", "b"), EDGES, name)
    return db


@pytest.fixture(scope="module")
def expected_count():
    query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
    return QueryEngine(make_database()).count(query).row_count


def run_async(coroutine):
    return asyncio.run(coroutine)


async def started_server(**kwargs):
    kwargs.setdefault("engine", QueryEngine(make_database()))
    server = QueryServer(**kwargs)
    await server.start()
    return server


async def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.01)


class GatedEngine(QueryEngine):
    """Holds every ``_ask`` inside the executor until the gate opens."""

    def __init__(self, database, **kwargs):
        super().__init__(database, **kwargs)
        self.entered = threading.Event()
        self.gate = threading.Event()

    def _ask(self, *args, **kwargs):
        self.entered.set()
        if not self.gate.wait(timeout=10):
            raise RuntimeError("test gate never opened")
        return super()._ask(*args, **kwargs)


class DelayEngine(QueryEngine):
    """Sleeps inside the executor before running (drain-window filler)."""

    def __init__(self, database, delay, **kwargs):
        super().__init__(database, **kwargs)
        self.delay = delay
        self.entered = threading.Event()

    def _ask(self, *args, **kwargs):
        self.entered.set()
        time.sleep(self.delay)
        return super()._ask(*args, **kwargs)


# ----------------------------------------------------------------------
# Basic round trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_exists_count_select(self, expected_count):
        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    exists = await c.execute("EXISTS Q() :- R(X, Y), S(Y, X)")
                    assert exists["kind"] == "exists"
                    assert exists["protocol_version"] == PROTOCOL_VERSION
                    assert exists["payload"]["answer"] is True

                    count = await c.execute(COUNT_CHAIN)
                    assert count["kind"] == "count"
                    assert count["payload"]["row_count"] == expected_count

                    select = await c.execute(
                        "SELECT Q(X, Z) :- R(X, Y), S(Y, Z)"
                    )
                    assert select["kind"] == "select"
                    rows = {tuple(row) for row in select["rows"]}
                    assert len(rows) == expected_count
                    assert select["payload"]["row_count"] == expected_count
            finally:
                await server.shutdown(drain_timeout=1.0)
            assert server.stats["served"] == 3

        run_async(scenario())

    def test_meta_and_explain_over_the_wire(self):
        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    relations = await c.execute("\\relations")
                    names = {r["name"] for r in relations["payload"]["relations"]}
                    assert names == {"R", "S"}
                    explain = await c.execute("EXPLAIN " + COUNT_CHAIN)
                    assert explain["kind"] == "explain"
                    assert explain["payload"]["strategy"]
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_load_over_the_wire(self, tmp_path, expected_count):
        (tmp_path / "t.csv").write_text("a,b\n1,2\n2,3\n3,1\n2,1\n3,4\n")

        async def scenario():
            server = await started_server(
                engine=QueryEngine(Database()), base_dir=str(tmp_path)
            )
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    for name in ("R", "S"):
                        loaded = await c.execute(f"LOAD {name} FROM 't.csv'")
                        assert loaded["kind"] == "loaded"
                        assert loaded["payload"]["rows"] == 5
                    count = await c.execute(COUNT_CHAIN)
                    assert count["payload"]["row_count"] == expected_count
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_loads_are_visible_across_connections(self):
        async def scenario():
            server = await started_server()
            try:
                a = await QueryClient.connect("127.0.0.1", server.port)
                b = await QueryClient.connect("127.0.0.1", server.port)
                # One shared engine: both connections see both relations.
                for client in (a, b):
                    doc = await client.execute("\\relations")
                    assert len(doc["payload"]["relations"]) == 2
                await a.close()
                await b.close()
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())


# ----------------------------------------------------------------------
# Wire protocol details (raw sockets)
# ----------------------------------------------------------------------
class TestWireDetails:
    def test_select_streams_in_batches(self, expected_count):
        async def scenario():
            server = await started_server(batch_size=2)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_message(
                        {
                            "id": 1,
                            "statement": "SELECT Q(X, Z) :- R(X, Y), S(Y, Z)",
                        }
                    )
                )
                await writer.drain()
                batches, rows = [], []
                while True:
                    line = await reader.readline()
                    document = json.loads(line)
                    if document["type"] == "batch":
                        batches.append(document["seq"])
                        rows.extend(tuple(r) for r in document["rows"])
                        assert len(document["rows"]) <= 2
                        continue
                    assert document["type"] == "result"
                    assert document["payload"]["batches"] == len(batches)
                    assert document["payload"]["row_count"] == expected_count
                    break
                assert batches == list(range(len(batches)))
                assert len(batches) >= 2  # actually streamed, not one blob
                assert len(set(rows)) == expected_count
                writer.close()
                await writer.wait_closed()
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_bad_requests(self):
        async def scenario():
            server = await started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                writer.write(encode_message({"id": 7}))  # no statement
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
                assert first["type"] == "error"
                assert first["code"] == "bad_request"
                assert second["code"] == "bad_request"
                assert second["id"] == 7
                # The connection survives malformed lines.
                writer.write(encode_message({"id": 8, "statement": "\\stats"}))
                await writer.drain()
                third = json.loads(await reader.readline())
                assert third["type"] == "result" and third["id"] == 8
                writer.close()
                await writer.wait_closed()
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_parse_error_carries_caret_diagnostic(self):
        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as exc:
                        await c.execute("COUNT Q(X :- R(X, Y)")
                    assert exc.value.code == "parse_error"
                    diagnostic = exc.value.document["diagnostic"]
                    assert "^" in diagnostic
                    assert "COUNT Q(X :- R(X, Y)" in diagnostic
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_missing_relation_is_an_engine_error(self):
        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as exc:
                        await c.execute("COUNT Q(X, Y) :- Nope(X, Y)")
                    assert exc.value.code == "engine_error"
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())


# ----------------------------------------------------------------------
# Deadlines over the wire
# ----------------------------------------------------------------------
class TestDeadlines:
    @pytest.mark.parametrize("parallelism", [1, 2])
    def test_request_timeout_returns_structured_partial(self, parallelism):
        async def scenario():
            server = await started_server(
                engine=QueryEngine(make_database(), parallelism=parallelism)
            )
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as exc:
                        await c.execute(COUNT_CHAIN, timeout=0.0)
                    error = exc.value
                    assert error.code == "timeout"
                    assert error.partial is not None
                    assert error.partial["timed_out"] is True
                    assert error.partial["protocol_version"] == PROTOCOL_VERSION
                    # The session keeps working after a timeout.
                    ok = await c.execute(COUNT_CHAIN)
                    assert ok["payload"]["timed_out"] is False
            finally:
                await server.shutdown(drain_timeout=1.0)
            assert server.stats["timeouts"] == 1

        run_async(scenario())

    def test_default_timeout_applies_when_request_names_none(self):
        async def scenario():
            server = await started_server(default_timeout=0.0)
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as exc:
                        await c.execute(COUNT_CHAIN)
                    assert exc.value.code == "timeout"
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_max_timeout_clamps_greedy_requests(self):
        async def scenario():
            server = await started_server(max_timeout=0.0)
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as exc:
                        await c.execute(COUNT_CHAIN, timeout=3600.0)
                    assert exc.value.code == "timeout"
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())


# ----------------------------------------------------------------------
# Admission control and concurrency
# ----------------------------------------------------------------------
class TestAdmission:
    def test_overloaded_rejection_carries_retry_after(self, expected_count):
        async def scenario():
            engine = GatedEngine(make_database())
            server = await started_server(
                engine=engine, max_concurrency=1, max_queue_depth=0
            )
            try:
                a = await QueryClient.connect("127.0.0.1", server.port)
                first = asyncio.ensure_future(a.execute(COUNT_CHAIN))
                await wait_for(engine.entered.is_set)
                b = await QueryClient.connect("127.0.0.1", server.port)
                with pytest.raises(ServerError) as exc:
                    await b.execute(COUNT_CHAIN)
                assert exc.value.code == "overloaded"
                assert exc.value.retry_after > 0
                engine.gate.set()
                document = await first
                assert document["payload"]["row_count"] == expected_count
                await a.close()
                await b.close()
            finally:
                engine.gate.set()
                await server.shutdown(drain_timeout=1.0)
            assert server.stats["rejected_overloaded"] == 1
            assert server.stats["served"] == 1

        run_async(scenario())

    def test_sixteen_sessions_under_admission_control(self, expected_count):
        """16 concurrent sessions against 4 workers + a 4-deep queue."""

        async def scenario():
            engine = GatedEngine(make_database())
            server = await started_server(
                engine=engine, max_concurrency=4, max_queue_depth=4
            )
            clients = []
            try:
                for _ in range(16):
                    clients.append(
                        await QueryClient.connect("127.0.0.1", server.port)
                    )
                tasks = [
                    asyncio.ensure_future(c.execute(COUNT_CHAIN)) for c in clients
                ]
                # 4 execute + 4 queue; the other 8 must be rejected.
                await wait_for(
                    lambda: server.stats["rejected_overloaded"] >= 8
                )
                engine.gate.set()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                served = [o for o in outcomes if isinstance(o, dict)]
                rejected = [o for o in outcomes if isinstance(o, ServerError)]
                assert len(served) + len(rejected) == 16
                assert len(served) >= 8
                assert all(
                    doc["payload"]["row_count"] == expected_count for doc in served
                )
                assert all(e.code == "overloaded" for e in rejected)
                assert all(e.retry_after > 0 for e in rejected)

                # Round two, gate open: every session is served, retries
                # absorb any leftover contention.
                retried = await asyncio.gather(
                    *[c.execute_with_retry(COUNT_CHAIN, attempts=10) for c in clients]
                )
                assert all(
                    doc["payload"]["row_count"] == expected_count for doc in retried
                )
            finally:
                engine.gate.set()
                for client in clients:
                    await client.close()
                await server.shutdown(drain_timeout=1.0)
            assert server.stats["served"] >= 16 + 8

        run_async(scenario())

    def test_mixed_verbs_from_many_sessions(self, expected_count):
        statements = [
            ("EXISTS Q() :- R(X, Y), S(Y, X)", "exists", True),
            (COUNT_CHAIN, "count", None),
            ("SELECT Q(X, Z) :- R(X, Y), S(Y, Z) LIMIT 3", "select", None),
        ]

        async def one_session(port):
            async with await QueryClient.connect("127.0.0.1", port) as client:
                for statement, kind, answer in statements:
                    doc = await client.execute_with_retry(statement, attempts=10)
                    assert doc["kind"] == kind
                    if kind == "exists":
                        assert doc["payload"]["answer"] is answer
                    elif kind == "count":
                        assert doc["payload"]["row_count"] == expected_count
                    else:
                        assert len(doc["rows"]) == 3

        async def scenario():
            server = await started_server(max_concurrency=4, max_queue_depth=16)
            try:
                await asyncio.gather(
                    *[one_session(server.port) for _ in range(16)]
                )
            finally:
                await server.shutdown(drain_timeout=1.0)
            assert server.stats["served"] == 16 * 3

        run_async(scenario())


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self, expected_count):
        async def scenario():
            engine = GatedEngine(make_database())
            server = await started_server(engine=engine, max_concurrency=2)
            a = await QueryClient.connect("127.0.0.1", server.port)
            b = await QueryClient.connect("127.0.0.1", server.port)
            inflight = asyncio.ensure_future(a.execute(COUNT_CHAIN))
            await wait_for(engine.entered.is_set)

            shutdown = asyncio.ensure_future(server.shutdown(drain_timeout=5.0))
            await wait_for(lambda: server._draining)
            # New statements on existing connections are turned away...
            with pytest.raises(ServerError) as exc:
                await b.execute(COUNT_CHAIN)
            assert exc.value.code == "shutting_down"
            # ...while the in-flight statement is allowed to finish.
            engine.gate.set()
            document = await inflight
            assert document["payload"]["row_count"] == expected_count
            await shutdown
            assert server.stats["rejected_draining"] == 1
            assert server.stats["served"] == 1
            await a.close()
            await b.close()

        run_async(scenario())

    def test_drain_cancels_overstaying_queries(self):
        async def scenario():
            engine = DelayEngine(make_database(), delay=0.4)
            server = await started_server(engine=engine)
            a = await QueryClient.connect("127.0.0.1", server.port)
            inflight = asyncio.ensure_future(a.execute(COUNT_CHAIN))
            await wait_for(engine.entered.is_set)
            # The drain window closes before the 0.4s sleep does: the
            # server fires the query's token, and the engine reports an
            # explicit cancellation (not a timeout).
            await server.shutdown(drain_timeout=0.05)
            with pytest.raises(ServerError) as exc:
                await inflight
            assert exc.value.code == "cancelled"
            await a.close()

        run_async(scenario())

    def test_no_new_connections_while_draining(self):
        async def scenario():
            server = await started_server()
            await server.shutdown(drain_timeout=0.1)
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", server.port)

        run_async(scenario())


# ----------------------------------------------------------------------
# Updates over the wire
# ----------------------------------------------------------------------
class TestUpdates:
    """INSERT/DELETE statements answer with the versioned update wire op."""

    def test_insert_delete_round_trip(self, expected_count):
        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    before = await c.execute(COUNT_CHAIN)
                    assert before["payload"]["row_count"] == expected_count

                    # S(4, 9) pairs with R(3, 4): one brand-new (3, 9).
                    inserted = await c.execute("INSERT S(4, 9), (3, 1)")
                    assert inserted["type"] == "result"
                    assert inserted["kind"] == "inserted"
                    assert inserted["protocol_version"] == PROTOCOL_VERSION
                    assert inserted["payload"] == {
                        "relation": "S",
                        "rows_given": 2,
                        "rows_changed": 1,  # (3, 1) was already present
                        "rows_total": len(EDGES) + 1,
                    }

                    after = await c.execute(COUNT_CHAIN)
                    assert after["payload"]["row_count"] == expected_count + 1

                    deleted = await c.execute("DELETE S(4, 9)")
                    assert deleted["kind"] == "deleted"
                    assert deleted["payload"]["rows_changed"] == 1
                    assert deleted["payload"]["rows_total"] == len(EDGES)

                    restored = await c.execute(COUNT_CHAIN)
                    assert restored["payload"]["row_count"] == expected_count
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_update_message_matches_golden_document(self):
        from pathlib import Path

        golden = json.loads(
            (Path(__file__).parent / "golden" / "update_result_v1.json").read_text(
                encoding="utf-8"
            )
        )

        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    live = await c.execute("INSERT R(1, 2), (8, 9)")
            finally:
                await server.shutdown(drain_timeout=1.0)
            # Same envelope and payload keys as the pinned v1 document —
            # extending the protocol with new result kinds must not
            # change the existing shapes.
            assert set(live) == set(golden)
            assert live["type"] == golden["type"]
            assert live["protocol_version"] == golden["protocol_version"] == 1
            assert set(live["payload"]) == set(golden["payload"])
            assert live["kind"] == golden["kind"] == "inserted"

        run_async(scenario())

    def test_update_unknown_relation_is_a_parse_error(self):
        async def scenario():
            server = await started_server()
            try:
                async with await QueryClient.connect("127.0.0.1", server.port) as c:
                    with pytest.raises(ServerError) as exc:
                        await c.execute("INSERT Zed(1, 2)")
                    assert exc.value.code == "parse_error"
                    assert "unknown relation" in str(exc.value)
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())

    def test_update_bad_syntax_carries_caret_diagnostic(self):
        async def scenario():
            server = await started_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_message({"id": 1, "statement": "INSERT R 1"}))
                await writer.drain()
                document = json.loads(await reader.readline())
                assert document["type"] == "error"
                assert document["code"] == "parse_error"
                assert "^" in document["diagnostic"]
                writer.close()
                await writer.wait_closed()
            finally:
                await server.shutdown(drain_timeout=1.0)

        run_async(scenario())
