"""Adaptive, statistics-driven kernel dispatch for the virtual machine.

The VM has three ways to execute a relational operator:

* the **row kernels** (Python loops over tuples — the ``set`` backend's
  native mode, and the generic fallback for mixed-backend operand pairs);
* the **columnar kernels** (vectorized NumPy code-array kernels); and
* the **morsel-parallel columnar kernels** — the probe side partitioned
  into fixed-size code-array chunks executed concurrently on the worker
  pool and recombined.

:class:`KernelDispatcher` makes those choices per operator from the
relations' cached :class:`~repro.db.backends.RelationStats`:

* ``n_r`` decides whether a probe side is worth partitioning at all and
  into how many chunks (``morsel_size`` rows each);
* degree bounds (``deg(Y | X)``) cap the morsel count of a join so the
  expected per-chunk output stays bounded even on high-fanout joins;
* ``n_r`` of both operands drives mixed-backend resolution — when one
  operand is columnar and large, the dispatcher converts the other side so
  the pair runs on the columnar kernel instead of the row-loop fallback;
* the distinct-count-sized matrix dimensions of an MM step pick the
  Strassen-vs-BLAS multiplication path through the cost model
  (:func:`repro.matmul.cost.preferred_mm_kernel`) instead of a fixed size
  cutoff.

The dispatcher is deliberately deterministic: decisions depend only on
relation statistics and configuration, never on timing, so parallel runs
stay reproducible and differential-testable against sequential ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_OMEGA
from ..db.relation import Relation
from ..matmul.boolean import resolve_mm_kernel
from ..matmul.cost import STRASSEN_OVERHEAD_FACTOR, preferred_mm_kernel

#: Rows per morsel: sized so one chunk's code arrays (a few int64 columns)
#: stay comfortably inside the per-core cache while still amortizing the
#: NumPy kernel launch overhead.
DEFAULT_MORSEL_SIZE = 32_768

#: Upper bound on the *expected* output rows of one join morsel
#: (``chunk rows × build-side degree bound``); the dispatcher narrows the
#: chunks of explosive joins so that the fragments materialized by
#: concurrently running chunks stay memory-bounded.
DEFAULT_MAX_MORSEL_OUTPUT = 4_000_000

#: A columnar operand must be at least this large before the dispatcher
#: converts a mixed-backend partner to the columnar representation; below
#: it the generic row loop is cheaper than encoding.
DEFAULT_CONVERT_THRESHOLD = 2_048

#: Largest ``limit`` a sorted select is served by ranked (any-k)
#: enumeration.  Each ranked pop is a Python heap operation plus O(tree)
#: vectorized restriction work, so per-row cost is microseconds — far
#: cheaper than scanning a huge output, but slower per row than one
#: bulk materialize + ``nsmallest`` when the caller wants a sizeable
#: fraction of the output anyway.  One morsel's worth of rows is where
#: the bulk path's fixed costs stop dominating.
DEFAULT_RANKED_LIMIT_CAP = DEFAULT_MORSEL_SIZE


@dataclass
class DispatchStats:
    """Counters of the choices one dispatcher instance has made."""

    morsel_ops: int = 0
    morsel_chunks: int = 0
    conversions: int = 0
    mm_strassen: int = 0
    mm_blas: int = 0


class KernelDispatcher:
    """Chooses execution kernels per operator from relation statistics.

    Parameters
    ----------
    omega:
        The MM exponent parameterising the cost model for kernel choice.
    morsel_size:
        Rows per probe-side chunk for morsel-parallel execution.
    min_partition_rows:
        Probe sides smaller than this are never partitioned (defaults to
        two morsels' worth — splitting below that only adds overhead).
    convert_threshold:
        Minimum size of a columnar operand before a mixed-backend partner
        is converted to columnar.
    strassen_overhead:
        Constant-factor handicap the sub-cubic MM path must overcome (see
        :data:`repro.matmul.cost.STRASSEN_OVERHEAD_FACTOR`).
    max_morsel_output:
        Cap on expected per-chunk join output rows (degree-bound based).
    ranked_limit_cap:
        Largest sorted-select ``limit`` served by ranked (any-k)
        enumeration rather than materialize + bounded sort.
    """

    def __init__(
        self,
        omega: float = DEFAULT_OMEGA,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        min_partition_rows: Optional[int] = None,
        convert_threshold: int = DEFAULT_CONVERT_THRESHOLD,
        strassen_overhead: float = STRASSEN_OVERHEAD_FACTOR,
        max_morsel_output: int = DEFAULT_MAX_MORSEL_OUTPUT,
        ranked_limit_cap: int = DEFAULT_RANKED_LIMIT_CAP,
    ) -> None:
        if morsel_size <= 0:
            raise ValueError("morsel_size must be positive")
        self.omega = omega
        self.morsel_size = morsel_size
        self.min_partition_rows = (
            2 * morsel_size if min_partition_rows is None else min_partition_rows
        )
        self.convert_threshold = convert_threshold
        self.strassen_overhead = strassen_overhead
        self.max_morsel_output = max_morsel_output
        self.ranked_limit_cap = ranked_limit_cap
        self.stats = DispatchStats()

    # ------------------------------------------------------------------
    # Select delivery
    # ------------------------------------------------------------------
    def ranked_enumeration(
        self,
        limit: Optional[int],
        order: str,
        output_hint: Optional[int] = None,
    ) -> bool:
        """Whether a sorted select should run as ranked (any-k) enumeration.

        The three deliveries a select can get — ``stream`` (discovery
        order, cursor), ``ranked`` (sorted order, cursor) and materialize
        + bounded sort — are picked here so both schedulers and every
        strategy agree.  Ranked wins when the caller asked for sorted
        order *and* bounded the output: per-popped-row cost is a heap
        operation plus O(tree) restriction work, so small limits finish
        in ~``exists`` + O(k log n).  Past ``ranked_limit_cap`` rows (or
        when ``output_hint`` says the limit covers the whole output) the
        bulk materialize + ``nsmallest`` path is cheaper per row, and an
        unlimited sorted select always materializes.  Deterministic by
        design: the decision reads configuration and statistics, never
        timing.
        """
        if order != "sorted" or limit is None:
            return False
        if limit > self.ranked_limit_cap:
            return False
        if output_hint is not None and 0 < output_hint <= limit:
            return False
        return True

    # ------------------------------------------------------------------
    # Morsel partitioning
    # ------------------------------------------------------------------
    def morsel_count(self, probe: Relation, workers: int) -> int:
        """How many chunks to split a probe side into (1 = run unsplit)."""
        if workers <= 1 or probe.backend_kind != "columnar":
            return 1
        rows = len(probe)
        if rows < self.min_partition_rows:
            return 1
        count = math.ceil(rows / self.morsel_size)
        self.stats.morsel_ops += 1
        self.stats.morsel_chunks += count
        return count

    def join_morsel_count(
        self,
        probe: Relation,
        build: Relation,
        shared: Tuple[str, ...],
        extras: Tuple[str, ...],
        workers: int,
    ) -> int:
        """Morsel count for a join, degree-bounded on the build side.

        The expected output of one chunk is ``chunk rows × deg(extras |
        shared)`` on the build side; on explosive joins the chunks are
        narrowed so each in-flight chunk's output stays under
        ``max_morsel_output`` rows (at most ``workers`` chunks materialize
        concurrently, so this bounds peak memory), floored at an eighth of
        the configured morsel size to avoid absurd fragmentation.
        """
        if workers <= 1 or probe.backend_kind != "columnar":
            return 1
        rows = len(probe)
        if rows < self.min_partition_rows:
            return 1
        fanout = max(build.stats.max_degree(extras, shared), 1) if shared else max(len(build), 1)
        chunk_rows = max(self.morsel_size, 1)
        if chunk_rows * fanout > self.max_morsel_output:
            chunk_rows = min(
                chunk_rows,
                max(self.max_morsel_output // fanout, self.morsel_size // 8, 1),
            )
        count = math.ceil(rows / chunk_rows)
        if count <= 1:
            return 1
        self.stats.morsel_ops += 1
        self.stats.morsel_chunks += count
        return count

    # ------------------------------------------------------------------
    # Mixed-backend resolution
    # ------------------------------------------------------------------
    def resolve_operands(
        self, left: Relation, right: Relation
    ) -> Tuple[Relation, Relation]:
        """Align a mixed-backend operand pair on one representation.

        When exactly one side is columnar and that side is large
        (``convert_threshold``), the other side is converted so the pair
        runs on the vectorized kernel; tiny pairs are left alone — the
        generic row loop beats the encoding cost there.  Same-backend
        pairs pass through untouched.
        """
        left_kind, right_kind = left.backend_kind, right.backend_kind
        if left_kind == right_kind:
            return left, right
        columnar, other = (left, right) if left_kind == "columnar" else (right, left)
        if len(columnar) < self.convert_threshold:
            return left, right
        converted = other.with_backend("columnar")
        self.stats.conversions += 1
        if columnar is left:
            return left, converted
        return converted, right

    # ------------------------------------------------------------------
    # Matrix-multiplication path
    # ------------------------------------------------------------------
    def mm_kernel(
        self, rows: int, inner: int, cols: int
    ) -> Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]]:
        """The multiplication kernel for one product shape (``None`` = BLAS).

        The dimensions are distinct-value counts of the encoded relations,
        so this is where the statistics pick the Strassen-vs-naive path —
        through the ω-parameterised cost model rather than a fixed cutoff.
        """
        name = preferred_mm_kernel(
            rows, inner, cols, self.omega, self.strassen_overhead
        )
        if name == "strassen":
            self.stats.mm_strassen += 1
        else:
            self.stats.mm_blas += 1
        return resolve_mm_kernel(name)


#: Shared default instance used by VMs constructed without an explicit
#: dispatcher (stats accumulate process-wide; engines build their own).
DEFAULT_DISPATCHER = KernelDispatcher()
