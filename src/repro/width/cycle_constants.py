"""Cycle-detection exponents based on square matrix multiplication.

Appendix C.2 relates the ω-submodular width of the ``k``-cycle query to the
exponent ``c□_k`` — the square-matrix-multiplication variant (Eqs. (45) and
(46)) of the cycle-detection exponent ``c_k`` of Dalirrooyfard, Vuong and
Vassilevska Williams.  The quantity is defined by an interval dynamic
program over a degree-threshold vector ``d`` followed by a maximization
over ``d``:

* :func:`omega_square` — the square-blocking rectangular MM exponent
  ``ω□(a, b, c)`` of Eq. (6);
* :func:`cycle_interval_dp` — the table ``P^d`` for a fixed degree vector,
  reading the inner combination of Eq. (45) as "the cost of running both
  recursive halves and the matrix multiplication", i.e. a maximum of the
  three exponents (the algorithmic semantics of [12]);
* :func:`cycle_exponent_estimate` — a grid + coordinate-ascent heuristic
  maximization over degree vectors.  The maximization domain of the source
  definition is a dense discretization, so the result here is a documented
  *estimate* of ``c□_k``; the benchmarks report it next to the exact
  ω-submodular width (computed by LP) and the 4-cycle closed form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..constants import gamma as gamma_of


def omega_square(a: float, b: float, c: float, omega: float) -> float:
    """``ω□(a, b, c) = max{a+b+γc, a+γb+c, γa+b+c}`` with ``γ = ω - 2`` (Eq. (6))."""
    g = gamma_of(omega)
    return max(a + b + g * c, a + g * b + c, g * a + b + c)


@dataclass(frozen=True)
class DegreeVector:
    """Per-position in/out degree thresholds ``(d⁻_i, d⁺_i)`` on a k-cycle."""

    minus: Tuple[float, ...]
    plus: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.minus) != len(self.plus):
            raise ValueError("minus and plus must have the same length")
        for value in self.minus + self.plus:
            if not 0.0 <= value <= 1.0:
                raise ValueError("degree thresholds live in [0, 1]")

    @property
    def k(self) -> int:
        return len(self.minus)

    def d(self, i: int) -> float:
        """``d_i = max(d⁻_i, d⁺_i)`` (used by the final combination)."""
        return max(self.minus[i % self.k], self.plus[i % self.k])


def cycle_interval_dp(degrees: DegreeVector, omega: float) -> Dict[Tuple[int, int], float]:
    """The interval table ``P^d_{i,j}`` for all ordered pairs on the cycle.

    ``P[i, j]`` is the exponent of computing reachability from position
    ``i`` to position ``j`` going forward around the cycle (indices mod k);
    the recursion follows Eq. (45) with the combination of the two halves
    and the matrix multiplication read as a maximum of exponents.
    """
    k = degrees.k
    table: Dict[Tuple[int, int], float] = {}

    def arc_length(i: int, j: int) -> int:
        return (j - i) % k

    def solve(i: int, j: int) -> float:
        key = (i, j)
        if key in table:
            return table[key]
        length = arc_length(i, j)
        if length == 0:
            raise ValueError("P is only defined for distinct endpoints")
        if length == 1:
            table[key] = 1.0
            return 1.0
        previous = (j - 1) % k
        nxt = (i + 1) % k
        best = min(
            solve(i, previous) + degrees.plus[previous],
            solve(nxt, j) + degrees.minus[nxt],
        )
        for offset in range(1, length):
            r = (i + offset) % k
            if r == j:
                continue
            mm_cost = omega_square(
                1.0 - degrees.d(i), 1.0 - degrees.d(r), 1.0 - degrees.d(j), omega
            )
            best = min(best, max(solve(i, r), solve(r, j), mm_cost))
        table[key] = best
        return best

    for i in range(k):
        for j in range(k):
            if i != j:
                solve(i, j)
    return table


def cycle_objective(degrees: DegreeVector, omega: float) -> float:
    """The inner ``min`` of Eq. (46) for a fixed degree vector."""
    k = degrees.k
    table = cycle_interval_dp(degrees, omega)
    best = min(2.0 - degrees.d(i) for i in range(k))
    for i in range(k):
        for j in range(i + 1, k):
            best = min(best, max(table[(i, j)], table[(j, i)]))
    return best


def cycle_exponent_estimate(
    k: int,
    omega: float,
    grid_steps: int = 8,
    refinement_rounds: int = 3,
) -> float:
    """A heuristic estimate of ``c□_k`` (Eq. (46)).

    The maximization over degree vectors starts from a symmetric grid scan
    (all thresholds equal) plus a small set of structured asymmetric
    candidates, then runs coordinate ascent on the full ``2k``-dimensional
    vector.  The result is a lower bound on the defining maximum (and hence
    on the source's value of ``c□_k``); it is reported for context next to
    the exact LP-based ω-submodular width.
    """
    if k < 3:
        raise ValueError("cycles need k >= 3")
    gamma_of(omega)
    grid = [i / grid_steps for i in range(grid_steps + 1)]

    candidates: List[DegreeVector] = []
    for value in grid:
        candidates.append(DegreeVector((value,) * k, (value,) * k))
    for low, high in itertools.product(grid, grid):
        minus = tuple(low if i % 2 == 0 else high for i in range(k))
        candidates.append(DegreeVector(minus, minus))

    best_vector = max(candidates, key=lambda d: cycle_objective(d, omega))
    best_value = cycle_objective(best_vector, omega)

    step = 1.0 / grid_steps
    minus = list(best_vector.minus)
    plus = list(best_vector.plus)
    for _ in range(refinement_rounds):
        step /= 2.0
        improved = False
        for index in range(k):
            for _which, values in (("minus", minus), ("plus", plus)):
                for delta in (-step, step):
                    candidate = values[index] + delta
                    if not 0.0 <= candidate <= 1.0:
                        continue
                    original = values[index]
                    values[index] = candidate
                    value = cycle_objective(DegreeVector(tuple(minus), tuple(plus)), omega)
                    if value > best_value + 1e-9:
                        best_value = value
                        improved = True
                    else:
                        values[index] = original
        if not improved and step < 1e-3:
            break
    return best_value


def four_cycle_closed_form(omega: float) -> float:
    """The exact 4-cycle exponent ``2 - 3/(2·min(ω, 5/2)+1)`` for cross-checks."""
    gamma_of(omega)
    return 2.0 - 3.0 / (2.0 * min(omega, 2.5) + 1.0)
