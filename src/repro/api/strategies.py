"""Pluggable execution strategies and the strategy registry.

The seed engine dispatched on a hard-coded if/elif chain; here every way of
answering a Boolean conjunctive query is a :class:`Strategy` object looked
up by name in a :class:`StrategyRegistry`.  The four shipped strategies —
``naive``, ``generic_join``, ``yannakakis`` and ``omega`` — are registered
on import; users add their own with the :func:`register_strategy`
decorator::

    @register_strategy
    class SamplingStrategy(Strategy):
        name = "sampling"

        def execute(self, query, database, omega, plan=None):
            return StrategyOutcome(answer=my_sampler(query, database))

Strategies that plan (``uses_plans = True``) split the work in two: the
engine obtains a plan — from its LRU plan cache whenever the query shape,
ω and database statistics match a previous ask — and hands it to
:meth:`Strategy.execute`, so repeated asks of the same shape skip planning
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union, overload

from ..db.database import Database
from ..db.joins import default_variable_order
from ..db.query import ConjunctiveQuery
from ..core.executor import ExecutionResult, PlanExecutor
from ..core.plan import OmegaQueryPlan
from ..core.planner import PlannedQuery, plan_query
from ..exec.ir import Program
from ..exec.lower import (
    VERBS,
    lower_generic_join,
    lower_naive,
    lower_plan,
    lower_yannakakis,
)
from ..exec.optimize import optimize_program
from ..exec.vm import VirtualMachine
from .errors import UnknownStrategyError, UnsupportedWorkload


@dataclass
class StrategyOutcome:
    """What a strategy produced: the answer plus optional diagnostics."""

    answer: bool
    plan: Optional[OmegaQueryPlan] = None
    planned: Optional[PlannedQuery] = None
    execution: Optional[ExecutionResult] = None


class Strategy:
    """One way of answering a conjunctive query.

    Subclasses set :attr:`name`, optionally restrict :meth:`supports`, and
    implement :meth:`execute`.  Plan-based strategies additionally set
    ``uses_plans = True`` and implement :meth:`plan`; the engine calls
    :meth:`plan` (through its cache) and passes the result to
    :meth:`execute`.

    :attr:`verbs` declares which query verbs the strategy serves.  The
    default — ``("exists",)`` — keeps pre-verb custom strategies working
    unchanged: the engine only ever passes a ``verb`` argument to
    :meth:`supports`/:meth:`lower` for strategies that opted into that
    verb, so old single-argument overrides are never called with it.
    Strategies that can count/enumerate extend ``verbs`` and accept the
    ``verb`` keyword in both methods.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: Whether the engine should obtain (and cache) a plan for this strategy.
    uses_plans: bool = False
    #: The query verbs this strategy can serve (exists-only by default;
    #: the engine raises :class:`UnsupportedWorkload` for anything else).
    verbs: Tuple[str, ...] = ("exists",)
    #: Whether :meth:`lower` accepts the ``select_options`` keyword (a
    #: :class:`~repro.exec.lower.SelectOptions` pushing limit/order into
    #: the enumeration program).  The engine only forwards the keyword to
    #: strategies that opt in — pre-existing overrides keep their old
    #: signature — and stamps the options onto the optimized program's
    #: root for everyone else.
    supports_select_options: bool = False

    def supports(self, query: ConjunctiveQuery, verb: str = "exists") -> bool:
        """Whether this strategy can answer the query for the given verb."""
        return verb in self.verbs

    def plan(
        self, query: ConjunctiveQuery, database: Database, omega: float
    ) -> PlannedQuery:
        """Build a plan for the query (plan-based strategies only)."""
        raise NotImplementedError(f"strategy {self.name!r} does not plan")

    def lower(
        self,
        query: ConjunctiveQuery,
        database: Database,
        omega: float,
        plan: Optional[OmegaQueryPlan] = None,
        verb: str = "exists",
    ) -> Optional[Program]:
        """Lower the strategy to a physical-operator program, or ``None``.

        Strategies that return a :class:`~repro.exec.ir.Program` execute on
        the engine's shared virtual machine (one instrumented executor,
        optimizer passes, cross-query result cache).  The default returns
        ``None`` for ``exists`` — which makes the engine fall back to
        :meth:`execute`, so custom strategies keep working unchanged — and
        raises :class:`UnsupportedWorkload` for any other verb.
        """
        if verb != "exists":
            raise UnsupportedWorkload(self.name, verb, query)
        return None

    def execute(
        self,
        query: ConjunctiveQuery,
        database: Database,
        omega: float,
        plan: Optional[OmegaQueryPlan] = None,
        *,
        parallelism: int = 1,
    ) -> StrategyOutcome:
        """Answer the query directly (standalone use, without an engine).

        The default implementation lowers (:meth:`lower`) and runs a
        private VM — with ``parallelism > 1`` a parallel morsel-driven one
        on a transient worker pool; strategies that neither lower nor
        override this raise ``NotImplementedError``.  (Engines run lowered
        programs on their own shared VM instead of calling this.)
        """
        program = self.lower(query, database, omega, plan=plan)
        if program is None:
            raise NotImplementedError
        program, _ = optimize_program(program)
        with VirtualMachine(database, parallelism=parallelism) as vm:
            result = vm.run(program)
        return StrategyOutcome(
            answer=result.answer,
            plan=plan,
            execution=ExecutionResult.from_vm(result),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Strategy {self.name!r}>"


class StrategyRegistry:
    """A mutable name → :class:`Strategy` mapping."""

    def __init__(self, strategies: Dict[str, Strategy] | None = None) -> None:
        self._strategies: Dict[str, Strategy] = dict(strategies or {})

    def register(
        self, strategy: Strategy, *, name: Optional[str] = None, replace: bool = False
    ) -> Strategy:
        key = name or strategy.name
        if not key:
            raise ValueError("strategies must declare a non-empty name")
        if key in self._strategies and not replace:
            raise ValueError(
                f"strategy {key!r} is already registered; pass replace=True "
                "to override it"
            )
        self._strategies[key] = strategy
        return strategy

    def unregister(self, name: str) -> Strategy:
        if name not in self._strategies:
            raise UnknownStrategyError(name, self.names())
        return self._strategies.pop(name)

    def get(self, name: str) -> Strategy:
        try:
            return self._strategies[name]
        except KeyError:
            raise UnknownStrategyError(name, self.names()) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._strategies))

    def __contains__(self, name: str) -> bool:
        return name in self._strategies

    def copy(self) -> "StrategyRegistry":
        """An independent copy (engines can customise without global effect)."""
        return StrategyRegistry(dict(self._strategies))


#: The process-wide registry used by default by every :class:`QueryEngine`.
DEFAULT_REGISTRY = StrategyRegistry()


@overload
def register_strategy(target: type) -> type: ...
@overload
def register_strategy(target: Strategy) -> Strategy: ...
@overload
def register_strategy(
    *,
    name: Optional[str] = None,
    registry: Optional[StrategyRegistry] = None,
    replace: bool = False,
) -> Callable[[Union[type, Strategy]], Union[type, Strategy]]: ...


def register_strategy(
    target: Union[type, Strategy, None] = None,
    *,
    name: Optional[str] = None,
    registry: Optional[StrategyRegistry] = None,
    replace: bool = False,
):
    """Register a :class:`Strategy` class or instance, usable as a decorator.

    ``@register_strategy`` on a class instantiates it and registers the
    instance under its ``name`` attribute; ``@register_strategy(name=...,
    replace=True)`` customises the key or allows overriding a built-in.
    Returns the decorated class/instance unchanged, so classes stay
    importable.
    """
    where = registry if registry is not None else DEFAULT_REGISTRY

    def apply(obj: Union[type, Strategy]):
        strategy = obj() if isinstance(obj, type) else obj
        if not isinstance(strategy, Strategy):
            raise TypeError("register_strategy expects a Strategy subclass or instance")
        where.register(strategy, name=name, replace=replace)
        return obj

    if target is not None:
        return apply(target)
    return apply


def unregister_strategy(
    name: str, registry: Optional[StrategyRegistry] = None
) -> Strategy:
    """Remove a strategy from the (default) registry and return it."""
    where = registry if registry is not None else DEFAULT_REGISTRY
    return where.unregister(name)


def available_strategies(registry: Optional[StrategyRegistry] = None) -> Tuple[str, ...]:
    """The registered strategy names (sorted)."""
    where = registry if registry is not None else DEFAULT_REGISTRY
    return where.names()


# ----------------------------------------------------------------------
# Built-in strategies
# ----------------------------------------------------------------------
@register_strategy
class NaiveStrategy(Strategy):
    """Materialise the full pairwise join; test, count or enumerate it."""

    name = "naive"
    verbs = VERBS

    def lower(self, query, database, omega, plan=None, verb="exists"):
        return lower_naive(query, verb=verb)


@register_strategy
class GenericJoinStrategy(Strategy):
    """Worst-case optimal join: early termination for ``exists``, the
    exhaustive search (projected onto the outputs) for ``count``/``select``."""

    name = "generic_join"
    verbs = VERBS

    def lower(self, query, database, omega, plan=None, verb="exists"):
        order = default_variable_order(query, database)
        return lower_generic_join(
            query, order, find_all=False, boolean=True, verb=verb
        )


@register_strategy
class YannakakisStrategy(Strategy):
    """Semijoin reduction (α-acyclic only): the upward pass for ``exists``,
    the full reducer plus top-down enumeration for ``count``/``select``."""

    name = "yannakakis"
    verbs = VERBS
    supports_select_options = True

    def supports(self, query, verb="exists"):
        return verb in self.verbs and query.is_acyclic()

    def lower(self, query, database, omega, plan=None, verb="exists",
              select_options=None):
        return lower_yannakakis(query, verb=verb, select_options=select_options)


@register_strategy
class OmegaStrategy(Strategy):
    """The paper's engine: cost-based ω-query planning plus execution.

    A decision procedure — the MM eliminations answer non-emptiness, not
    counting or enumeration — so it stays exists-only and raises
    :class:`UnsupportedWorkload` for the other verbs (``auto`` resolution
    falls back to a verb-capable strategy instead of raising).
    """

    name = "omega"
    uses_plans = True

    def plan(self, query, database, omega):
        return plan_query(query, database, omega)

    def lower(self, query, database, omega, plan=None, verb="exists"):
        if verb != "exists":
            raise UnsupportedWorkload(self.name, verb, query)
        if plan is None:
            plan = self.plan(query, database, omega).plan
        return lower_plan(query, database, plan).program

    def execute(self, query, database, omega, plan=None):
        planned: Optional[PlannedQuery] = None
        if plan is None:
            planned = self.plan(query, database, omega)
            plan = planned.plan
        execution = PlanExecutor(query, database).run(plan, omega)
        return StrategyOutcome(
            answer=execution.answer, plan=plan, planned=planned, execution=execution
        )
