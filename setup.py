"""Setuptools shim for environments without PEP 517 build isolation."""

import pathlib
import re

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).resolve().parent


def read_version() -> str:
    """Parse ``repro.__version__`` without importing the package."""
    text = (ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-omega-submodular-width",
    version=read_version(),
    description=(
        'Reproduction of "Fast Matrix Multiplication meets the Submodular '
        'Width": width measures, ω-query plans, and a cached Boolean query '
        "engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
