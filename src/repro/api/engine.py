"""The :class:`QueryEngine` facade: stateful, cached, batched query answering.

Where the seed exposed one free function that re-planned on every call, the
engine owns a :class:`~repro.db.database.Database`, resolves strategies
through a registry, and memoizes ω-query plans in an LRU cache keyed by
(canonical query shape, strategy, ω, database statistics fingerprint).  The
second ask of any previously seen query shape therefore skips planning
entirely — including asks of *isomorphic* queries with different variable
or relation names — and batches (:meth:`QueryEngine.ask_many`) share plans
across isomorphic group members even with the cache disabled.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..constants import DEFAULT_OMEGA
from ..db.database import Database
from ..db.query import ConjunctiveQuery
from ..core.executor import ExecutionResult
from ..core.plan import OmegaQueryPlan
from ..core.planner import PlannedQuery
from ..exec.dispatch import KernelDispatcher
from ..exec.ir import Program
from ..exec.optimize import optimize_program
from ..exec.vm import ResultCache, ResultCacheStats, VirtualMachine, WorkerPool
from .cache import CachedPlanEntry, CacheStats, PlanCache, PlanCacheKey
from .errors import StrategyDisagreement
from .strategies import (
    DEFAULT_REGISTRY,
    Strategy,
    StrategyOutcome,
    StrategyRegistry,
)

#: Environment knob for the default engine worker count (``1`` = fully
#: sequential execution, the historical behaviour).
PARALLELISM_ENV = "REPRO_PARALLELISM"


def default_parallelism() -> int:
    """The worker count from ``REPRO_PARALLELISM`` (1 when unset/invalid)."""
    raw = os.environ.get(PARALLELISM_ENV, "").strip()
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(value, 1)


@dataclass
class QueryResult:
    """The outcome of one :meth:`QueryEngine.ask`.

    Extends the seed's ``EngineReport`` with a plan/execute timing
    breakdown and plan-provenance counters:

    * ``plan_seconds`` / ``execute_seconds`` — where the time went;
      ``seconds`` is the end-to-end wall clock including dispatch.
    * ``cache_hit`` — whether the plan came from the engine's plan cache.
    * ``plan_source`` — ``"none"`` (strategy does not plan), ``"planner"``
      (freshly planned), ``"cache"`` (LRU hit), ``"batch"`` (shared within
      an :meth:`QueryEngine.ask_many` isomorphism group) or ``"given"``
      (caller-supplied plan).
    """

    query: ConjunctiveQuery
    answer: bool
    strategy: str
    seconds: float
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    cache_hit: bool = False
    plan_source: str = "none"
    plan: Optional[OmegaQueryPlan] = None
    planned: Optional[PlannedQuery] = None
    execution: Optional[ExecutionResult] = None
    #: The lowered physical-operator program the ask executed (``None``
    #: only for strategies without a lowering).
    program: Optional[Program] = None

    def describe(self) -> str:
        lines = [
            f"query:    {self.query}",
            f"strategy: {self.strategy}",
            f"answer:   {self.answer}",
            f"time:     {self.seconds * 1000:.2f} ms "
            f"(plan {self.plan_seconds * 1000:.2f} ms, "
            f"execute {self.execute_seconds * 1000:.2f} ms)",
        ]
        if self.plan_source != "none":
            lines.append(f"plan:     from {self.plan_source}")
        if self.planned is not None:
            lines.append(self.planned.describe())
        elif self.plan is not None:
            lines.append(self.plan.describe())
        return "\n".join(lines)


@dataclass
class Explanation:
    """What :meth:`QueryEngine.explain` reports: plan + structure, no execution."""

    query: ConjunctiveQuery
    strategy: str
    is_acyclic: bool
    num_variables: int
    num_atoms: int
    cache_hit: bool = False
    plan: Optional[OmegaQueryPlan] = None
    planned: Optional[PlannedQuery] = None
    widths: Dict[str, float] = field(default_factory=dict)
    #: The lowered (and optimized) physical-operator DAG the ask would run.
    program: Optional[Program] = None

    def describe(self) -> str:
        lines = [
            f"query:    {self.query}",
            f"strategy: {self.strategy}",
            f"shape:    {self.num_atoms} atoms over {self.num_variables} variables"
            f" ({'acyclic' if self.is_acyclic else 'cyclic'})",
        ]
        for measure, value in sorted(self.widths.items()):
            lines.append(f"{measure}: {value:.4f}")
        if self.planned is not None:
            lines.append("plan:")
            lines.append(self.planned.describe())
        elif self.plan is not None:
            lines.append("plan (cached):")
            lines.append(self.plan.describe())
        if self.program is not None:
            lines.append("operators:")
            lines.append(self.program.describe())
        return "\n".join(lines)


class QueryEngine:
    """A stateful Boolean-conjunctive-query engine over one database.

    Parameters
    ----------
    database:
        The data the engine answers queries against.  The engine reads the
        database's statistics fingerprint on every ask, so mutating the
        database (setting or deleting relations) transparently invalidates
        cached plans.
    omega:
        The default matrix-multiplication exponent for cost models;
        overridable per call.
    registry:
        The strategy registry to resolve names through; defaults to the
        process-wide :data:`~repro.api.strategies.DEFAULT_REGISTRY`.  Pass
        ``DEFAULT_REGISTRY.copy()`` to customise strategies locally.
    plan_cache_size:
        Maximum number of cached plans (LRU eviction); ``0`` disables the
        cache.
    result_cache_size:
        Maximum number of intermediate operator results the virtual machine
        may keep across asks (LRU eviction; ``0`` disables).  Keyed by the
        operators' name-insensitive structural hash plus the database
        fingerprint, this is what lets :meth:`ask_many` batches of
        isomorphic queries share identical subplans — the same encoded
        relation semijoined the same way is computed once.
    backend:
        Optional storage backend name (``"set"``, ``"columnar"``); when
        given, the database's relations are converted in place via
        :meth:`Database.convert_backend` so every strategy runs on that
        representation.  ``None`` leaves the database untouched.
    parallelism:
        Worker count for query execution.  ``1`` keeps the classic
        sequential executor; ``>= 2`` runs lowered programs on the
        parallel morsel-driven VM (independent operators scheduled
        concurrently, large probe sides chunked) and shards
        :meth:`ask_many` batches across the worker pool.  Defaults to the
        ``REPRO_PARALLELISM`` environment variable, else ``1``.  Engines
        with ``parallelism > 1`` own a thread pool — release it with
        :meth:`close` or use the engine as a context manager (threads are
        also reaped at interpreter exit, so leaking it is benign in
        scripts).
    dispatcher:
        Optional :class:`~repro.exec.dispatch.KernelDispatcher` overriding
        the adaptive kernel-choice policy (morsel size, mixed-backend
        conversion threshold, Strassen-vs-BLAS overhead factor).  By
        default the engine builds one parameterised by its ω.
    """

    def __init__(
        self,
        database: Database,
        *,
        omega: float = DEFAULT_OMEGA,
        registry: Optional[StrategyRegistry] = None,
        plan_cache_size: int = 128,
        result_cache_size: int = 32,
        backend: Optional[str] = None,
        parallelism: Optional[int] = None,
        dispatcher: Optional[KernelDispatcher] = None,
    ) -> None:
        if backend is not None:
            database.convert_backend(backend)
        self.database = database
        self.omega = omega
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._plan_cache = PlanCache(plan_cache_size)
        self._result_cache = ResultCache(result_cache_size)
        resolved_parallelism = (
            default_parallelism() if parallelism is None else parallelism
        )
        if resolved_parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        self.parallelism = resolved_parallelism
        self.dispatcher = (
            dispatcher if dispatcher is not None else KernelDispatcher(omega=omega)
        )
        self._pool: Optional[WorkerPool] = (
            WorkerPool(self.parallelism) if self.parallelism > 1 else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the engine's worker pool (no-op when sequential)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self.parallelism = 1

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Strategy resolution
    # ------------------------------------------------------------------
    def resolve_strategy(
        self, query: ConjunctiveQuery, strategy: str = "auto"
    ) -> Strategy:
        """Resolve a strategy name (``"auto"`` included) for a query.

        ``"auto"`` prefers Yannakakis for acyclic queries and the ω-engine
        otherwise, matching the seed engine's dispatch.
        """
        return self.registry.get(self._resolve_key(query, strategy))

    def _resolve_key(self, query: ConjunctiveQuery, strategy: str) -> str:
        """Resolve ``"auto"`` to a concrete *registry key*.

        The registry key (not ``Strategy.name``, which aliases may share)
        identifies the strategy in results and in plan-cache keys.
        """
        if strategy == "auto":
            if "yannakakis" in self.registry:
                if self.registry.get("yannakakis").supports(query):
                    return "yannakakis"
            return "omega"
        return strategy

    def _resolve_supported(
        self, query: ConjunctiveQuery, strategy: str
    ) -> Tuple[str, Strategy]:
        key = self._resolve_key(query, strategy)
        resolved = self.registry.get(key)
        if not resolved.supports(query):
            raise ValueError(
                f"strategy {key!r} does not support query {query.name} "
                f"({'acyclic' if query.is_acyclic() else 'cyclic'})"
            )
        return key, resolved

    # ------------------------------------------------------------------
    # Asking
    # ------------------------------------------------------------------
    def ask(
        self,
        query: ConjunctiveQuery,
        strategy: str = "auto",
        *,
        omega: Optional[float] = None,
        plan: Optional[OmegaQueryPlan] = None,
    ) -> QueryResult:
        """Answer one Boolean query, reusing a cached plan when possible."""
        return self._ask(query, strategy, omega=omega, plan=plan)

    def _ask(
        self,
        query: ConjunctiveQuery,
        strategy: str = "auto",
        *,
        omega: Optional[float] = None,
        plan: Optional[OmegaQueryPlan] = None,
        dag_scheduling: bool = True,
    ) -> QueryResult:
        """:meth:`ask`, with scheduler control for :meth:`ask_many` shards.

        Batch shards already occupy the pool's DAG executor, so they run
        their VMs without DAG scheduling (morsel-level parallelism stays
        on) — nesting both would let shards starve each other.
        """
        start = time.perf_counter()
        omega_value = self.omega if omega is None else omega
        self.database.validate_against(query)
        if plan is not None and strategy == "auto":
            strategy = "omega"
        strategy_key, resolved = self._resolve_supported(query, strategy)
        if plan is not None and not resolved.uses_plans:
            raise ValueError(
                f"strategy {strategy_key!r} does not execute plans; an explicit "
                "plan requires a plan-based strategy such as 'omega'"
            )

        planned: Optional[PlannedQuery] = None
        plan_seconds = 0.0
        cache_hit = False
        plan_source = "none"
        program: Optional[Program] = None
        if plan is not None:
            plan_source = "given"
        elif resolved.uses_plans:
            plan, planned, cache_hit, plan_seconds, program = self._obtain_plan(
                strategy_key, resolved, query, omega_value
            )
            plan_source = "cache" if cache_hit else "planner"

        execute_start = time.perf_counter()
        if program is None:
            program = self._lower(resolved, query, omega_value, plan)
        if program is not None:
            # The unified path: run the lowered program on the shared VM
            # (per-operator traces, cross-query intermediate-result cache,
            # parallel scheduling + morsels when the engine has workers).
            vm = VirtualMachine(
                self.database,
                result_cache=self._result_cache,
                dispatcher=self.dispatcher,
                parallelism=self.parallelism,
                pool=self._pool,
                dag_scheduling=dag_scheduling,
            )
            vm_result = vm.run(program)
            outcome = StrategyOutcome(
                answer=vm_result.answer,
                plan=plan,
                execution=ExecutionResult.from_vm(vm_result),
            )
        else:
            # Legacy path for custom strategies without a lowering.
            outcome = resolved.execute(query, self.database, omega_value, plan=plan)
        execute_seconds = time.perf_counter() - execute_start
        if outcome.planned is not None:
            planned = outcome.planned
        return QueryResult(
            query=query,
            answer=outcome.answer,
            strategy=strategy_key,
            seconds=time.perf_counter() - start,
            plan_seconds=plan_seconds,
            execute_seconds=execute_seconds,
            cache_hit=cache_hit,
            plan_source=plan_source,
            plan=outcome.plan if outcome.plan is not None else plan,
            planned=planned,
            execution=outcome.execution,
            program=program,
        )

    def ask_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        strategy: str = "auto",
        *,
        omega: Optional[float] = None,
    ) -> List[QueryResult]:
        """Answer a batch of queries, sharing plans across isomorphic shapes.

        Queries are grouped by (resolved strategy, canonical shape
        signature); each group is planned at most once.  With the plan
        cache enabled the sharing happens through the cache (later group
        members report ``plan_source == "cache"``); with the cache disabled
        the representative's plan is renamed into each member's variables
        (``plan_source == "batch"``).  Results come back in input order.

        With ``parallelism > 1`` the batch is *sharded* across the worker
        pool: group representatives (which plan and warm the caches) run
        concurrently first, then the remaining members fan out.  Shard VMs
        keep morsel-level parallelism but skip DAG scheduling — the shards
        themselves occupy the DAG executor.
        """
        query_list = list(queries)
        results: List[Optional[QueryResult]] = [None] * len(query_list)
        groups: Dict[Tuple[str, Hashable], List[int]] = {}
        singletons: List[int] = []
        for position, query in enumerate(query_list):
            strategy_key = self._resolve_key(query, strategy)
            resolved = self.registry.get(strategy_key)
            if resolved.uses_plans:
                # Group like the cache keys: same shape AND same relation
                # statistics, so a shared plan was costed for its members.
                key = (
                    strategy_key,
                    (query.shape_signature(), self._atom_sizes(query)),
                )
                groups.setdefault(key, []).append(position)
            else:
                singletons.append(position)
        def member_result(
            position: int, shared_canonical: Optional[OmegaQueryPlan]
        ) -> QueryResult:
            member_query = query_list[position]
            if shared_canonical is None:
                # The LRU cache carries the plan to the other members.
                return self._ask(
                    member_query,
                    strategy,
                    omega=omega,
                    dag_scheduling=self._pool is None,
                )
            inverse = {
                canonical: variable
                for variable, canonical in member_query.canonical_mapping().items()
            }
            result = self._ask(
                member_query,
                strategy,
                omega=omega,
                plan=shared_canonical.rename(inverse),
                dag_scheduling=self._pool is None,
            )
            result.plan_source = "batch"
            return result

        def shared_plan(members: List[int]) -> Optional[OmegaQueryPlan]:
            rep_result = results[members[0]]
            assert rep_result is not None
            if not self._plan_cache.enabled and rep_result.plan is not None:
                return rep_result.plan.rename(
                    query_list[members[0]].canonical_mapping()
                )
            return None

        if self._pool is None:
            for position in singletons:
                results[position] = self.ask(
                    query_list[position], strategy, omega=omega
                )
            for members in groups.values():
                results[members[0]] = self.ask(
                    query_list[members[0]], strategy, omega=omega
                )
                shared_canonical = shared_plan(members)
                for position in members[1:]:
                    results[position] = member_result(position, shared_canonical)
        else:
            # Phase 1: singletons and group representatives in parallel.
            def shard(position: int) -> Tuple[int, QueryResult]:
                return position, self._ask(
                    query_list[position], strategy, omega=omega, dag_scheduling=False
                )

            phase_one = singletons + [members[0] for members in groups.values()]
            futures = [self._pool.submit_node(shard, p) for p in phase_one]
            for future in futures:
                position, result = future.result()
                results[position] = result
            # Phase 2: the remaining group members fan out, reusing the
            # representatives' plans (via the cache, or renamed directly).
            def member_shard(
                position: int, shared_canonical: Optional[OmegaQueryPlan]
            ) -> Tuple[int, QueryResult]:
                return position, member_result(position, shared_canonical)

            phase_two: List[Tuple[int, Optional[OmegaQueryPlan]]] = []
            for members in groups.values():
                if len(members) == 1:
                    continue
                shared_canonical = shared_plan(members)
                phase_two.extend(
                    (position, shared_canonical) for position in members[1:]
                )
            futures = [
                self._pool.submit_node(member_shard, p, sc) for p, sc in phase_two
            ]
            for future in futures:
                position, result = future.result()
                results[position] = result
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]

    def explain(
        self,
        query: ConjunctiveQuery,
        strategy: str = "auto",
        *,
        omega: Optional[float] = None,
        include_widths: bool = False,
    ) -> Explanation:
        """Report the chosen strategy and plan without executing the query.

        For plan-based strategies the plan is obtained through the same
        cache path as :meth:`ask` (so explaining a query warms the cache
        for the ask that follows).  With ``include_widths=True`` the report
        also carries the classical width measures ρ* and fhtw of the query
        hypergraph.
        """
        omega_value = self.omega if omega is None else omega
        self.database.validate_against(query)
        strategy_key, resolved = self._resolve_supported(query, strategy)
        plan: Optional[OmegaQueryPlan] = None
        planned: Optional[PlannedQuery] = None
        cache_hit = False
        program: Optional[Program] = None
        if resolved.uses_plans:
            plan, planned, cache_hit, _, program = self._obtain_plan(
                strategy_key, resolved, query, omega_value
            )
        widths: Dict[str, float] = {}
        if include_widths:
            from ..width import (
                fractional_edge_cover_number,
                fractional_hypertree_width,
            )

            hypergraph = query.hypergraph()
            widths["fractional edge cover ρ*"] = fractional_edge_cover_number(
                hypergraph
            )
            widths["fractional hypertree width"] = fractional_hypertree_width(
                hypergraph
            ).value
        if program is None:
            program = self._lower(resolved, query, omega_value, plan)
        return Explanation(
            query=query,
            strategy=strategy_key,
            is_acyclic=query.is_acyclic(),
            num_variables=len(query.variables),
            num_atoms=len(query.atoms),
            cache_hit=cache_hit,
            plan=plan,
            planned=planned,
            widths=widths,
            program=program,
        )

    def compare(
        self,
        query: ConjunctiveQuery,
        strategies: Optional[Sequence[str]] = None,
        *,
        omega: Optional[float] = None,
    ) -> Dict[str, QueryResult]:
        """Run several strategies on the same query; answers must agree.

        Raises :class:`StrategyDisagreement` (carrying the per-strategy
        answers) if any two strategies return different Boolean answers.
        """
        if strategies is None:
            names = ["naive", "generic_join", "omega"]
            if (
                "yannakakis" in self.registry
                and self.registry.get("yannakakis").supports(query)
            ):
                names.append("yannakakis")
        else:
            names = list(strategies)
        results = {
            name: self.ask(query, strategy=name, omega=omega) for name in names
        }
        answers = {name: result.answer for name, result in results.items()}
        if len(set(answers.values())) > 1:
            raise StrategyDisagreement(query, answers, results)
        return results

    # ------------------------------------------------------------------
    # Plan-cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheStats:
        """Hit/miss/eviction counters and current size of the plan cache."""
        return self._plan_cache.stats()

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    def result_cache_info(self) -> ResultCacheStats:
        """Counters of the VM's cross-query intermediate-result cache."""
        return self._result_cache.stats()

    def clear_result_cache(self) -> None:
        self._result_cache.clear()

    def _atom_sizes(self, query: ConjunctiveQuery) -> Tuple[Tuple[Tuple[str, ...], int], ...]:
        """Per-atom relation sizes in canonical variable space.

        The shape signature deliberately forgets which relations the atoms
        bind to (so renamed isomorphic queries share plans), but plans are
        *costed* against the actual relation statistics — the cache key and
        the batch grouping include these sizes so two same-shaped queries
        over differently-sized relations are planned separately.
        """
        mapping = query.canonical_mapping()
        return tuple(
            sorted(
                (
                    tuple(sorted(mapping[v] for v in atom.variables)),
                    len(self.database[atom.relation]),
                )
                for atom in query.atoms
            )
        )

    def _lower(
        self,
        strategy: Strategy,
        query: ConjunctiveQuery,
        omega: float,
        plan: Optional[OmegaQueryPlan],
    ) -> Optional[Program]:
        """Lower a strategy to an optimized program (``None`` if it cannot)."""
        program = strategy.lower(query, self.database, omega, plan=plan)
        if program is None:
            return None
        program, _ = optimize_program(program)
        return program

    def _canonical_binding(
        self, query: ConjunctiveQuery, mapping: Dict[str, str]
    ) -> Tuple:
        """Which relation each canonical atom binds to, column order included.

        A cached program scans concrete relations with a fixed positional
        column→variable correspondence, so reuse requires the requesting
        query to bind the same relations with the same *ordered* canonical
        scopes.  (The shape signature sorts within atoms — two queries can
        share a signature while wiring a relation's columns differently, so
        the order must be preserved here or a cached program would answer
        for the wrong query.)
        """
        return tuple(
            sorted(
                (tuple(mapping[v] for v in atom.variables), atom.relation)
                for atom in query.atoms
            )
        )

    def _obtain_plan(
        self,
        strategy_key: str,
        strategy: Strategy,
        query: ConjunctiveQuery,
        omega: float,
    ) -> Tuple[OmegaQueryPlan, Optional[PlannedQuery], bool, float, Optional[Program]]:
        """Fetch a plan (and its lowered program) from the cache, or build both.

        Returns ``(plan, planned-or-None, cache_hit, plan_seconds,
        program-or-None)``.  Cache entries hold the plan *and* the
        optimized IR in canonical variable space; a hit renames them into
        the query's variables.  If the hit's atom→relation binding differs
        (isomorphic query over different relations), the plan is reused and
        the program re-lowered.
        """
        mapping = query.canonical_mapping()
        key: PlanCacheKey = (
            strategy_key,
            (query.shape_signature(), self._atom_sizes(query)),
            omega,
            self.database.statistics_fingerprint(),
        )
        binding = self._canonical_binding(query, mapping)
        cached = self._plan_cache.get(key)
        if cached is not None:
            inverse = {c: variable for variable, c in mapping.items()}
            if isinstance(cached, CachedPlanEntry):
                plan = cached.plan.rename(inverse)
                program: Optional[Program] = None
                relower_seconds = 0.0
                if cached.program is not None and cached.binding == binding:
                    assert isinstance(cached.program, Program)
                    program = cached.program.rename(inverse)
                if program is None:
                    # Same shape, different atom wiring: the plan is reused
                    # but the IR must be lowered afresh — report that work
                    # as planning time rather than hiding it.
                    relower_start = time.perf_counter()
                    program = self._lower(strategy, query, omega, plan)
                    relower_seconds = time.perf_counter() - relower_start
                return plan, None, True, relower_seconds, program
            # Back-compat: a bare plan stored directly in the cache.
            assert isinstance(cached, OmegaQueryPlan)
            return cached.rename(inverse), None, True, 0.0, None
        plan_start = time.perf_counter()
        planned = strategy.plan(query, self.database, omega)
        program = self._lower(strategy, query, omega, planned.plan)
        plan_seconds = time.perf_counter() - plan_start
        self._plan_cache.put(
            key,
            CachedPlanEntry(
                plan=planned.plan.rename(mapping),
                program=program.rename(mapping) if program is not None else None,
                binding=binding,
            ),
        )
        return planned.plan, planned, False, plan_seconds, program

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.cache_info()
        return (
            f"QueryEngine({self.database!r}, omega={self.omega}, "
            f"strategies={self.registry.names()}, "
            f"cache={stats.size}/{stats.maxsize}, "
            f"parallelism={self.parallelism})"
        )
