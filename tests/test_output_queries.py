"""The output-aware query API: exists / count / select across the stack.

The differential core mirrors ``tests/test_backends_differential.py``: for
every (strategy × backend × shape) case on seeded random instances,
``count`` must equal the brute-force distinct-output count, ``select`` must
enumerate exactly the brute-force tuple set in its deterministic order
(identical at ``parallelism=1`` and ``parallelism=4``), and ``exists`` must
answer exactly like the pre-verb ``ask``.  Around that sit the API-surface
tests: ResultSet laziness/limit/fetch semantics, UnsupportedWorkload on the
exists-only ω strategy with registry fallback, QueryParseError spans,
``QueryResult.to_dict`` round-tripping, and plan/result-cache invalidation
through ``bulk_load`` and ``convert_backend``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api import (
    QueryEngine,
    QueryParseError,
    ResultSet,
    Strategy,
    StrategyDisagreement,
    StrategyRegistry,
    UnsupportedWorkload,
    register_strategy,
    row_order_key,
)
from repro.constants import OMEGA_BEST_KNOWN
from repro.db import (
    Database,
    Relation,
    available_backends,
    parse_query,
    random_database,
    triangle_instance,
)
from repro.exec.lower import lower_naive, lower_yannakakis

BACKENDS = available_backends()

#: Output-producing variants of the differential shapes.
SHAPES = {
    "path2": "Q(X, Z) :- R(X, Y), S(Y, Z)",
    "chain3": "Q(X, W) :- R(X, Y), S(Y, Z), T(Z, W)",
    "star": "Q(C) :- R(C, X), S(C, Y), T(C, Z)",
    "triangle": "Q(X, Y, Z) :- R(X, Y), S(Y, Z), T(X, Z)",
    "four_cycle": "Q(X, Z) :- R(X, Y), S(Y, Z), T(Z, W), U(W, X)",
    "disconnected": "Q(X, W) :- R(X, Y), S(Z, W)",
    "boolean_head": "Q() :- R(X, Y), S(Y, Z)",
}

SEEDS = range(6)


def brute_force_outputs(query, database):
    """All distinct output tuples by exhaustive consistent assignment."""
    assignments = [{}]
    for atom in query.atoms:
        relation = database[atom.relation]
        extended = []
        for partial in assignments:
            for row in relation.rows:
                candidate = dict(partial)
                ok = True
                for variable, value in zip(atom.variables, row):
                    if candidate.get(variable, value) != value:
                        ok = False
                        break
                    candidate[variable] = value
                if ok:
                    extended.append(candidate)
        assignments = extended
        if not assignments:
            break
    return {
        tuple(a[v] for v in query.output_variables) for a in assignments
    }


def _case_parameters(shape: str, seed: int):
    rng = random.Random(f"out:{shape}:{seed}")
    tuples = rng.choice([4, 8, 15, 22])
    domain = rng.choice([3, 4, 6, 8])
    plant = rng.random() < 0.3
    return tuples, domain, plant


def _strategies(query):
    names = ["naive", "generic_join"]
    if query.is_acyclic():
        names.append("yannakakis")
    return names


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_count_and_select_match_brute_force(shape, seed):
    query = parse_query(SHAPES[shape])
    tuples, domain, plant = _case_parameters(shape, seed)
    for backend in BACKENDS:
        database = random_database(
            query, tuples, domain_size=domain, seed=seed, plant_witness=plant,
            backend=backend,
        )
        expected = brute_force_outputs(query, database)
        expected_rows = sorted(expected)
        engine = QueryEngine(database)
        for strategy in _strategies(query):
            label = f"{shape} seed={seed} backend={backend} strategy={strategy}"
            counted = engine.count(query, strategy=strategy)
            assert counted.row_count == len(expected), label
            assert counted.verb == "count"
            assert counted.answer == (len(expected) > 0)
            rows = engine.select(query, strategy=strategy).to_rows()
            assert rows == sorted(rows, key=row_order_key)  # deterministic order
            assert set(rows) == expected, label
            assert len(rows) == len(expected), label  # distinct
            # exists agrees with the count being positive and with ask().
            exists = engine.exists(query, strategy=strategy)
            assert exists.answer == (len(expected) > 0), label
            assert engine.ask(query, strategy=strategy).answer == exists.answer


@pytest.mark.parametrize("shape", ["path2", "triangle", "chain3"])
def test_select_limit_and_parallel_determinism(shape):
    query = parse_query(SHAPES[shape])
    database = random_database(
        query, 25, domain_size=6, seed=7, plant_witness=True, backend="columnar"
    )
    sequential = QueryEngine(database, parallelism=1)
    full = sequential.select(query).to_rows()
    total = len(full)
    assert total > 0
    for k in (0, 1, 2, total, total + 5):
        limited = sequential.select(query, limit=k, order="sorted").to_rows()
        assert limited == full[: min(k, total)]
        assert len(limited) == min(k, total)
        # The default (stream) order keeps the set/cardinality contract.
        streamed = sequential.select(query, limit=k).to_rows()
        assert len(streamed) == min(k, total)
        assert set(streamed) <= set(full)
    with QueryEngine(database, parallelism=4) as parallel:
        assert parallel.select(query).to_rows() == full
        assert parallel.select(query, limit=3, order="sorted").to_rows() == full[:3]
        assert parallel.count(query).row_count == total


def test_exists_matches_pre_verb_ask_on_differential_cases():
    """`exists` answers byte-identically to `ask` across the old suite."""
    from test_backends_differential import (
        SHAPES as BOOLEAN_SHAPES,
        _case_parameters as boolean_parameters,
    )

    for shape in sorted(BOOLEAN_SHAPES):
        query = parse_query(BOOLEAN_SHAPES[shape])
        for seed in range(3):
            tuples, domain, plant = boolean_parameters(shape, seed)
            database = random_database(
                query, tuples, domain_size=domain, seed=seed, plant_witness=plant
            )
            engine = QueryEngine(database)
            asked = engine.ask(query)
            existed = engine.exists(query)
            assert asked.answer == existed.answer
            assert asked.verb == existed.verb == "exists"
            assert existed.row_count is None


class TestResultSet:
    def _engine(self):
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (2, 3), (1, 3), (4, 2)]),
                "S": Relation(("A", "B"), [(2, 5), (3, 6), (3, 5)]),
            }
        )
        return QueryEngine(db)

    def test_lazy_until_pulled(self):
        engine = self._engine()
        calls = []
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        original = engine._ask

        def counting_ask(*args, **kwargs):
            calls.append(kwargs.get("verb"))
            return original(*args, **kwargs)

        engine._ask = counting_ask
        result_set = engine.select(query)
        assert isinstance(result_set, ResultSet)
        assert not result_set.executed
        assert calls == []  # nothing ran yet
        rows = result_set.to_rows()
        assert result_set.executed and calls == ["select"]
        assert result_set.to_rows() == rows
        assert calls == ["select"]  # ran exactly once
        assert result_set.result.verb == "select"
        assert result_set.result.row_count == len(rows)
        assert result_set.result.relation is not None

    def test_fetch_cursor_and_batches(self):
        engine = self._engine()
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        result_set = engine.select(query, batch_size=2)
        rows = result_set.to_rows()
        assert len(rows) >= 3
        assert result_set.fetch(2) == rows[:2]
        assert result_set.fetch(2) == rows[2:4]
        result_set.rewind()
        assert result_set.fetch(1) == rows[:1]
        assert [len(batch) <= 2 for batch in result_set.batches()]
        assert [row for batch in result_set.batches() for row in batch] == rows
        assert list(result_set) == rows
        assert sorted(result_set) == rows  # already deterministically sorted

    def test_iteration_and_len(self):
        engine = self._engine()
        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        result_set = engine.select(query)
        assert len(result_set) == len(set(result_set.to_rows()))
        assert result_set.columns == ("X",)

    def test_invalid_arguments(self):
        engine = self._engine()
        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        with pytest.raises(ValueError):
            engine.select(query, limit=-1)
        with pytest.raises(ValueError):
            engine.select(query, batch_size=0)
        with pytest.raises(ValueError):
            engine.select(query).fetch(-1)

    def test_select_validates_eagerly(self):
        engine = self._engine()
        with pytest.raises(KeyError):
            engine.select(parse_query("Q(X) :- Missing(X, Y)"))


class TestVerbResolution:
    def _db(self):
        return triangle_instance(40, domain_size=12, seed=3, plant_triangle=True)

    def test_omega_is_exists_only(self):
        engine = QueryEngine(self._db(), omega=OMEGA_BEST_KNOWN)
        triangle = parse_query("Q(X, Y, Z) :- R(X, Y), S(Y, Z), T(X, Z)")
        with pytest.raises(UnsupportedWorkload):
            engine.count(triangle, strategy="omega")
        with pytest.raises(UnsupportedWorkload):
            engine.select(triangle, strategy="omega")
        with pytest.raises(NotImplementedError):  # subclass contract
            engine.count(triangle, strategy="omega")
        # auto falls back to the WCOJ search on the cyclic body instead.
        counted = engine.count(triangle)
        assert counted.strategy == "generic_join"
        assert counted.row_count > 0

    def test_auto_prefers_yannakakis_for_acyclic_outputs(self):
        engine = QueryEngine(self._db())
        path = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        assert engine.count(path).strategy == "yannakakis"
        assert engine.select(path).result.strategy == "yannakakis"

    def test_auto_fallback_without_generic_join(self):
        registry = QueryEngine(self._db()).registry.copy()
        registry.unregister("generic_join")
        engine = QueryEngine(self._db(), registry=registry)
        triangle = parse_query("Q(X) :- R(X, Y), S(Y, Z), T(X, Z)")
        counted = engine.count(triangle)  # cyclic: falls back to naive
        assert counted.strategy == "naive"
        assert counted.row_count > 0

    def test_unorderable_values_still_sort_deterministically(self):
        database = Database(
            {"R": Relation(("A", "B"), [(1j, 1), (2j, 2), (1 + 1j, 3)])}
        )
        engine = QueryEngine(database)
        query = parse_query("Q(A) :- R(A, B)")
        rows = engine.select(query).to_rows()
        assert len(rows) == 3
        assert rows == engine.select(query).to_rows()  # stable order

    def test_mixed_type_limits_are_prefixes_of_the_full_order(self):
        # The comparator is chosen from the value types alone, so a limit
        # can never take a different path than the full sort (natural
        # comparison might "succeed" on the few pairs a bounded selection
        # happens to compare while the full sort would raise).
        database = Database(
            {
                "R": Relation(
                    ("A", "B"),
                    [(0, "a"), (0.5, 1), (1, "a"), (1, 5), ("z", 0)],
                )
            }
        )
        engine = QueryEngine(database)
        query = parse_query("Q(A, B) :- R(A, B)")
        full = engine.select(query).to_rows()
        assert len(full) == 5
        for k in range(1, 6):
            assert (
                engine.select(query, limit=k, order="sorted").to_rows() == full[:k]
            )

    def test_nan_outputs_keep_the_limit_prefix_contract(self):
        nan = float("nan")
        database = Database(
            {"R": Relation(("A", "B"), [(nan, 1.0), (2.0, 1.0), (0.5, 1.0)])}
        )
        engine = QueryEngine(database)
        query = parse_query("Q(A) :- R(A, B)")
        full = engine.select(query).to_rows()
        assert len(full) == 3
        # Real floats sort first, NaN canonicalizes to the end.
        assert full[:2] == [(0.5,), (2.0,)]
        assert full[2][0] != full[2][0]  # the NaN row
        for k in (1, 2, 3):
            limited = engine.select(query, limit=k, order="sorted").to_rows()
            assert [repr(r) for r in limited] == [repr(r) for r in full[:k]]

    def test_auto_exhausted_error_does_not_advise_auto(self):
        registry = StrategyRegistry()  # no verb-capable strategies at all
        engine = QueryEngine(self._db(), registry=registry)
        with pytest.raises(UnsupportedWorkload, match="no registered strategy"):
            engine.count(parse_query("Q(X) :- R(X, Y)"))

    def test_old_style_custom_strategy_stays_exists_only(self):
        registry = StrategyRegistry()

        @register_strategy(registry=registry)
        class LegacyTrue(Strategy):
            name = "legacy"

            def supports(self, query):  # pre-verb single-argument override
                return True

            def execute(self, query, database, omega, plan=None):
                from repro.api import StrategyOutcome

                return StrategyOutcome(answer=True)

        engine = QueryEngine(self._db(), registry=registry)
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        assert engine.exists(query, strategy="legacy").answer
        with pytest.raises(UnsupportedWorkload):
            engine.count(query, strategy="legacy")

    def test_explicit_plan_rejected_for_output_verbs(self):
        engine = QueryEngine(self._db(), omega=OMEGA_BEST_KNOWN)
        triangle = parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)")
        plan = engine.ask(triangle, strategy="omega").plan
        with pytest.raises(ValueError, match="exists"):
            engine._ask(triangle, "omega", plan=plan, verb="count")

    def test_unknown_verb_rejected(self):
        engine = QueryEngine(self._db())
        with pytest.raises(ValueError, match="verb"):
            engine._ask(parse_query("Q() :- R(X, Y)"), verb="sum")
        # The public resolver fails fast on typo'd verbs too, instead of
        # silently resolving to the exists-only omega strategy.
        with pytest.raises(ValueError, match="verb"):
            engine.resolve_strategy(parse_query("Q() :- R(X, Y)"), verb="Count")

    def test_exists_plan_cache_shared_across_heads(self):
        engine = QueryEngine(self._db(), omega=OMEGA_BEST_KNOWN)
        boolean = parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)")
        headed = parse_query("Q(X) :- R(X, Y), S(Y, Z), T(X, Z)")
        first = engine.ask(boolean, strategy="omega")
        second = engine.exists(headed, strategy="omega")
        assert not first.cache_hit
        assert second.cache_hit  # exists ignores heads: one shared plan
        assert first.answer == second.answer


class TestVerbBatchesAndCompare:
    def test_ask_many_count_verb(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = random_database(query, 20, domain_size=5, seed=1)
        engine = QueryEngine(database)
        renamed = parse_query("Q(U, W) :- R(U, V), S(V, W)")
        results = engine.ask_many([query, renamed], verb="count")
        expected = len(brute_force_outputs(query, database))
        assert [r.row_count for r in results] == [expected, expected]
        assert all(r.verb == "count" for r in results)

    def test_ask_many_select_returns_lazy_result_sets(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = random_database(query, 20, domain_size=5, seed=1)
        engine = QueryEngine(database)
        expected = brute_force_outputs(query, database)
        cursors = engine.ask_many([query, query], verb="select", limit=2)
        assert all(not cursor.executed for cursor in cursors)
        for cursor in cursors:
            rows = cursor.to_rows()
            assert len(rows) == min(2, len(expected))
            assert set(rows) <= expected
        # limit/order are select-only knobs.
        with pytest.raises(ValueError, match="select"):
            engine.ask_many([query], verb="count", limit=2)
        with pytest.raises(ValueError, match="verbs"):
            engine.ask_many([query], verb="nonsense")

    def test_compare_across_verbs(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = random_database(query, 18, domain_size=5, seed=2)
        engine = QueryEngine(database)
        for verb in ("exists", "count", "select"):
            results = engine.compare(query, verb=verb)
            assert "naive" in results and "generic_join" in results
            if verb != "exists":
                assert "omega" not in results
                counts = {r.row_count for r in results.values()}
                assert len(counts) == 1

    def test_compare_disagreement_carries_verb(self):
        registry = StrategyRegistry()

        @register_strategy(registry=registry)
        class WrongCount(Strategy):
            name = "wrong"
            verbs = ("exists", "count", "select")

            def lower(self, query, database, omega, plan=None, verb="exists"):
                # Lower a single-atom program: wrong for multi-atom queries.
                return lower_naive(
                    type(query)(query.atoms[:1], query.name, query.output_variables),
                    verb=verb,
                )

        @register_strategy(registry=registry)
        class Good(Strategy):
            name = "good"
            verbs = ("exists", "count", "select")

            def lower(self, query, database, omega, plan=None, verb="exists"):
                return lower_naive(query, verb=verb)

        query = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        database = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (5, 9)]),
                "S": Relation(("A", "B"), [(2, 3)]),
            }
        )
        engine = QueryEngine(database, registry=registry)
        with pytest.raises(StrategyDisagreement) as info:
            engine.compare(query, ["wrong", "good"], verb="count")
        assert info.value.verb == "count"
        assert info.value.answers["good"] == 1


class TestCountKernel:
    @pytest.mark.parametrize("seed", range(10))
    def test_count_distinct_matches_reference(self, seed):
        rng = random.Random(seed)
        schema = ("X", "Y", "Z")[: rng.randint(1, 3)]
        rows = [
            tuple(rng.randint(0, 4) for _ in schema)
            for _ in range(rng.randint(0, 30))
        ]
        reference = Relation(schema, rows, backend="set")
        columnar = Relation(schema, rows, backend="columnar")
        for width in range(len(schema) + 1):
            kept = list(schema[:width])
            expected = len(reference.project(kept)) if kept else (
                1 if len(reference) else 0
            )
            assert reference.count_distinct(kept) == expected
            assert columnar.count_distinct(kept) == expected

    def test_duplicate_projection_variables_rejected(self):
        relation = Relation(("X", "Y"), [(1, 2)])
        with pytest.raises(ValueError):
            relation.count_distinct(["X", "X"])


class TestParseErrors:
    def test_span_and_fragment_on_unparsed_text(self):
        text = "Q() :- R(X, Y), S(Y, Z"
        with pytest.raises(QueryParseError) as info:
            parse_query(text)
        error = info.value
        assert isinstance(error, ValueError)
        assert error.source == text
        start, end = error.span
        assert text[start:end] == error.fragment
        assert "S(Y, Z" in error.fragment
        assert "unparsed text" in str(error)

    def test_span_points_at_malformed_variable(self):
        text = "Q() :- R(X, Y), S(Y Z)"
        with pytest.raises(QueryParseError) as info:
            parse_query(text)
        error = info.value
        assert error.fragment == "Y Z"
        assert text[error.span[0]: error.span[1]] == "Y Z"

    def test_span_points_at_bad_head(self):
        text = "Q(X Y) :- R(X, Y)"
        with pytest.raises(QueryParseError) as info:
            parse_query(text)
        assert info.value.fragment == "X Y"

    def test_unknown_head_variable_is_parse_error(self):
        with pytest.raises(QueryParseError, match="output variables"):
            parse_query("Q(A) :- R(X, Y)")

    def test_repeated_atom_variable_wrapped_with_span(self):
        text = "Q() :- R(X, X)"
        with pytest.raises(QueryParseError) as info:
            parse_query(text)
        assert info.value.fragment == "R(X, X)"

    def test_extra_head_atoms_rejected_not_dropped(self):
        # A silently dropped head fragment would silently change the
        # output semantics of count/select.
        with pytest.raises(QueryParseError, match="head"):
            parse_query("P(X), Q(Z) :- R(X, Y), S(Y, Z)")
        with pytest.raises(QueryParseError, match="head"):
            parse_query("Q(X) extra :- R(X, Y)")
        with pytest.raises(QueryParseError, match="head"):
            parse_query("not a name :- R(X, Y)")
        # Lenient mode keeps the historical first-atom behaviour.
        lenient = parse_query("P(X), Q(Z) :- R(X, Y), S(Y, Z)", strict=False)
        assert lenient.output_variables == ("X",)

    def test_bare_name_heads_still_parse(self):
        assert parse_query("Q :- R(X, Y)").name == "Q"
        assert parse_query("Q'() :- R(X, Y)").name == "Q'"


class TestToDict:
    def test_json_round_trip(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = random_database(query, 15, domain_size=5, seed=4)
        engine = QueryEngine(database)
        for result in (
            engine.exists(query),
            engine.count(query),
            engine.select(query).result,
        ):
            document = result.to_dict()
            round_tripped = json.loads(json.dumps(document))
            assert round_tripped == document
            assert document["verb"] == result.verb
            assert document["output_variables"] == list(query.output_variables)
            assert document["strategy"] == result.strategy
            assert isinstance(document["trace"], list)
            assert document["trace"], "trace summary must not be empty"
            for op in document["trace"]:
                assert set(op) >= {"kind", "rows_in", "rows_out", "kernel"}

    def test_count_row_count_serialized(self):
        query = parse_query("Q(X) :- R(X, Y)")
        database = Database({"R": Relation(("A", "B"), [(1, 2), (1, 3), (2, 2)])})
        document = QueryEngine(database).count(query).to_dict()
        assert document["row_count"] == 2
        assert document["answer"] is True


class TestCacheInvalidation:
    """bulk_load and convert_backend must invalidate both engine caches."""

    TRIANGLE = parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)")

    def _warm(self, engine):
        first = engine.ask(self.TRIANGLE, strategy="omega")
        second = engine.ask(self.TRIANGLE, strategy="omega")
        assert not first.cache_hit and second.cache_hit
        return first.answer

    def test_bulk_load_invalidates_plan_and_result_caches(self):
        database = triangle_instance(40, domain_size=10, seed=5, plant_triangle=True)
        engine = QueryEngine(database, omega=OMEGA_BEST_KNOWN)
        assert self._warm(engine) is True
        result_hits_before = engine.result_cache_info().hits
        fingerprint_before = database.statistics_fingerprint()
        database.bulk_load({"R": (("X", "Y"), [])})  # drop every R edge
        assert database.statistics_fingerprint() != fingerprint_before
        refreshed = engine.ask(self.TRIANGLE, strategy="omega")
        assert refreshed.answer is False
        assert not refreshed.cache_hit  # the plan cache saw the new fingerprint
        assert refreshed.plan_source == "planner"
        # The result cache is keyed by fingerprint too: nothing may hit.
        assert engine.result_cache_info().hits == result_hits_before

    def test_convert_backend_invalidates_plan_and_result_caches(self):
        database = triangle_instance(40, domain_size=10, seed=6, plant_triangle=True)
        engine = QueryEngine(database, omega=OMEGA_BEST_KNOWN)
        answer = self._warm(engine)
        result_hits_before = engine.result_cache_info().hits
        fingerprint_before = database.statistics_fingerprint()
        database.convert_backend("columnar")
        assert database.statistics_fingerprint() != fingerprint_before
        refreshed = engine.ask(self.TRIANGLE, strategy="omega")
        assert refreshed.answer == answer  # same data, new representation
        assert not refreshed.cache_hit
        assert engine.result_cache_info().hits == result_hits_before
        # Output verbs observe the conversion too.
        outputs = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z), T(X, Z)")
        counted = engine.count(outputs)
        assert counted.row_count == len(brute_force_outputs(outputs, database))


class TestLoweringShapes:
    def test_select_program_has_enumeration_sink(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = random_database(query, 10, domain_size=4, seed=0)
        engine = QueryEngine(database)
        explanation = engine.explain(query, verb="select")
        described = explanation.program.describe()
        assert "Enumerate" in described
        assert explanation.verb == "select"
        assert explanation.output_variables == ("X", "Z")

    def test_count_program_has_count_sink(self):
        query = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        database = random_database(query, 10, domain_size=4, seed=0)
        engine = QueryEngine(database)
        described = engine.explain(query, verb="count").program.describe()
        assert "Count[X, Z]" in described
        assert "-> int" in described

    def test_yannakakis_full_reducer_calibrates_both_directions(self):
        query = parse_query("Q(X, W) :- R(X, Y), S(Y, Z), T(Z, W)")
        program = lower_yannakakis(query, verb="count")
        described = program.describe()
        # Upward + downward passes: strictly more semijoins than the
        # Boolean program's single upward pass.
        boolean = lower_yannakakis(query, verb="exists").describe()
        assert described.count("Semijoin") > boolean.count("Semijoin")
        assert "Count" in described

    def test_boolean_head_count_skips_enumeration_machinery(self):
        query = parse_query("Q() :- R(X, Y), S(Y, Z), T(Z, W)")
        described = lower_yannakakis(query, verb="count").describe()
        # Upward pass + Count sink only: no downward calibration joins.
        assert "Join" not in described
        assert "Count[()]" in described
        # The WCOJ lowering likewise keeps the early-terminating search.
        from repro.exec.lower import lower_generic_join

        program = lower_generic_join(
            query, sorted(query.variables), verb="count"
        )
        assert "first" in program.root.children[0].label()  # find_all=False

    def test_exists_lowering_unchanged(self):
        query = parse_query("Q() :- R(X, Y), S(Y, Z)")
        assert (
            lower_yannakakis(query).describe()
            == lower_yannakakis(query, verb="exists").describe()
        )


class TestOutputSignatures:
    def test_output_signature_distinguishes_heads(self):
        a = parse_query("Q(X) :- R(X, Y), S(Y, Z)")
        b = parse_query("Q(Z) :- R(X, Y), S(Y, Z)")
        assert a.shape_signature() == b.shape_signature()
        assert a.output_signature() != b.output_signature()

    def test_isomorphic_output_queries_share_signatures(self):
        a = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
        b = parse_query("Q(U, W) :- A(U, V), B(V, W)")
        assert a.shape_signature() == b.shape_signature()
        assert a.output_signature() == b.output_signature()

    def test_with_outputs(self):
        q = parse_query("Q() :- R(X, Y)")
        widened = q.with_outputs(("Y",))
        assert widened.output_variables == ("Y",)
        assert widened.atoms == q.atoms
        with pytest.raises(ValueError):
            q.with_outputs(("Nope",))
