"""Lowering every strategy to the physical-operator IR.

Each function turns one *logical* way of answering a conjunctive query
into a :class:`~repro.exec.ir.Program`.  The verb-capable lowerings
(naive, GenericJoin, Yannakakis) accept a ``verb`` — ``"exists"`` keeps
the historical Boolean program byte-for-byte, while ``"count"``/
``"select"`` finish with the :class:`~repro.exec.ir.Count` /
:class:`~repro.exec.ir.Distinct`+:class:`~repro.exec.ir.Enumerate` output
sinks over the query's free variables:

* :func:`lower_naive` / :func:`lower_naive_join` — fold the atoms with
  binary joins (the classical baseline);
* :func:`lower_generic_join` — a single :class:`~repro.exec.ir.Wcoj`
  operator holding the worst-case-optimal search;
* :func:`lower_yannakakis` — the GYO join tree becomes an upward semijoin
  program (which the optimizer then fuses);
* :func:`lower_plan` — an :class:`~repro.core.plan.OmegaQueryPlan`'s
  elimination steps become Join/Project or GroupedMatMul nodes, with the
  side-splitting and realizability checks done *statically* from the
  operator schemas;
* :func:`lower_triangle` / :func:`lower_four_cycle` / :func:`lower_clique`
  — the per-query-class algorithms (Figure 1 degree partitioning, the
  adaptive 4-cycle split, Nešetřil–Poljak clique detection) expressed as
  IR DAGs rather than standalone engines.

Lowerings that mirror an instrumented report (triangle, 4-cycle, ω-plans)
also return *role* records pointing at the operators whose traces
reconstruct the legacy diagnostics.

Programs lowered here are *pure* in the relations they scan, which is
what makes incremental maintenance work downstream: the VM keys each
operator's result-cache entry on the fingerprints of the relations in
the operator's scan closure, so after a small delta only the join-tree
paths whose closure contains the mutated relation re-execute — the
calibrated semijoin state of untouched subtrees is reused as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.plan import OmegaQueryPlan, PlanStep, StepMethod
from ..db.database import Database
from ..db.query import ConjunctiveQuery
from ..matmul.cost import triangle_threshold
from .ir import (
    ENUMERATION_ORDERS,
    All_,
    Antijoin,
    Any_,
    Count,
    Distinct,
    Enumerate,
    GroupedMatMul,
    HeavyPart,
    Join,
    LightPart,
    MatMul,
    NonEmpty,
    Operator,
    Program,
    Project,
    Restrict,
    Scan,
    Semijoin,
    Union,
    Wcoj,
)

#: The query verbs a lowering may be asked to serve — the canonical
#: vocabulary (the API layer re-exports it).
VERBS = ("exists", "count", "select")


def check_verb(verb: str) -> None:
    """Reject anything outside the verb vocabulary (shared validation)."""
    if verb not in VERBS:
        raise ValueError(f"unknown query verb {verb!r}; expected one of {VERBS}")


@dataclass(frozen=True)
class SelectOptions:
    """How a ``select`` run wants its output tuples delivered.

    ``order="stream"`` asks for discovery-order enumeration with constant
    delay; ``order="ranked"`` asks for *sorted*-order enumeration through
    the any-k frontier heap (the engine picks it for sorted selects with
    a small limit); a non-``None`` ``limit`` bounds how many distinct
    tuples the caller will pull.  ``order="sorted"`` always materializes
    — with a limit the result layer takes the bounded ``nsmallest``
    prefix, without one it sorts the full output once.
    """

    limit: Optional[int] = None
    order: str = "sorted"

    def __post_init__(self) -> None:
        if self.order not in ENUMERATION_ORDERS:
            raise ValueError(
                f"select order must be one of {ENUMERATION_ORDERS}, "
                f"got {self.order!r}"
            )
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")

    @property
    def streaming(self) -> bool:
        return self.order != "sorted"


def apply_select_options(program: Program, options: SelectOptions) -> Program:
    """Stamp ``limit``/``order`` onto a select program's Enumerate root.

    Lowerings that are not streaming-aware produce the pass-through
    Enumerate sink; rebuilding just the root hands the ResultSet/VM the
    delivery contract without touching the cacheable subprogram beneath.
    A root that already carries the options is returned unchanged.
    """
    root = program.root
    if not isinstance(root, Enumerate):
        return program
    if root.limit == options.limit and root.order == options.order:
        return program
    rebuilt = Enumerate(
        root.child,
        root.frontiers,
        root.variables_out,
        options.limit,
        options.order,
        root.parents,
    )
    return Program(rebuilt, source=program.source)


def _output_sink(node: Operator, query: ConjunctiveQuery, verb: str) -> Operator:
    """Wrap a relational operator covering the outputs in the verb's sink.

    ``exists`` keeps the historical Boolean root; ``count`` counts the
    distinct output projections without materializing them; ``select``
    materializes the distinct output relation under an :class:`Enumerate`
    marker the engine's result sets stream from.
    """
    outputs = tuple(query.output_variables)
    missing = [v for v in outputs if v not in node.schema]
    if missing:
        raise ValueError(
            f"lowering lost output variables {missing}: schema {node.schema}"
        )
    if verb == "exists":
        return NonEmpty(node)
    if verb == "count":
        return Count(node, outputs)
    sink = node if outputs == node.schema else Distinct(node, outputs)
    return Enumerate(sink)


def scan_atoms(query: ConjunctiveQuery) -> List[Scan]:
    """One Scan per query atom, columns renamed to the atom's variables."""
    return [Scan(atom.relation, tuple(atom.variables)) for atom in query.atoms]


def _project(node: Operator, variables: Sequence[str]) -> Operator:
    """A Project node, skipped when it would be the identity."""
    variables = tuple(variables)
    if variables == node.schema:
        return node
    return Project(node, variables)


def _static_size(node: Operator, database: Database) -> float:
    """A rough static cardinality used to order join folds smallest-first."""
    if isinstance(node, Scan):
        return float(len(database[node.relation]))
    if isinstance(node, (Project, Semijoin, Restrict, LightPart)):
        return _static_size(node.children[0], database)
    return float("inf")


def _fold_joins(nodes: Sequence[Operator], database: Optional[Database]) -> Operator:
    """Left-fold Join nodes, smallest estimated input first when stats exist."""
    ordered = list(nodes)
    if database is not None:
        ordered.sort(key=lambda n: _static_size(n, database))
    result = ordered[0]
    for node in ordered[1:]:
        result = Join(result, node)
    return result


# ----------------------------------------------------------------------
# Naive pairwise join
# ----------------------------------------------------------------------
def lower_naive(query: ConjunctiveQuery, verb: str = "exists") -> Program:
    """The naive strategy: a left-to-right join fold under the verb's sink.

    ``exists`` tests non-emptiness of the fold (the historical Boolean
    program); ``count``/``select`` count or enumerate the distinct
    projections of the fold onto the query's output variables.
    """
    check_verb(verb)
    scans = scan_atoms(query)
    joined: Operator = scans[0]
    for scan in scans[1:]:
        joined = Join(joined, scan)
    return Program(_output_sink(joined, query, verb), source="naive")


def lower_naive_join(query: ConjunctiveQuery) -> Program:
    """Full naive join: the fold projected onto the sorted query variables."""
    scans = scan_atoms(query)
    joined = scans[0]
    for scan in scans[1:]:
        joined = Join(joined, scan)
    return Program(_project(joined, sorted(query.variables)), source="naive-join")


# ----------------------------------------------------------------------
# GenericJoin
# ----------------------------------------------------------------------
def lower_generic_join(
    query: ConjunctiveQuery,
    variable_order: Sequence[str],
    find_all: bool = False,
    boolean: bool = True,
    verb: Optional[str] = None,
) -> Program:
    """GenericJoin as a single Wcoj operator over the atom scans.

    Without ``verb`` the historical knobs apply (``find_all``/``boolean``).
    With a verb, ``exists`` keeps the early-terminating Boolean search,
    while ``count``/``select`` run the search exhaustively and project the
    full assignment relation onto the output variables under the sink.
    """
    if verb is not None:
        check_verb(verb)
        if verb == "exists":
            find_all, boolean = False, True
        else:
            # A Boolean head only needs non-emptiness (the nullary
            # projection): keep the early-terminating search for it.
            wcoj = Wcoj(
                tuple(scan_atoms(query)),
                tuple(variable_order),
                not query.is_boolean,
            )
            return Program(_output_sink(wcoj, query, verb), source="generic-join")
    wcoj = Wcoj(tuple(scan_atoms(query)), tuple(variable_order), find_all)
    root: Operator = NonEmpty(wcoj) if boolean else wcoj
    return Program(root, source="generic-join")


# ----------------------------------------------------------------------
# Yannakakis
# ----------------------------------------------------------------------
def lower_yannakakis(
    query: ConjunctiveQuery,
    verb: str = "exists",
    select_options: Optional[SelectOptions] = None,
) -> Program:
    """The GYO join tree as a semijoin-reduction program under a verb sink.

    Raises ``ValueError`` when the query is cyclic.

    ``exists`` lowers to the classic upward pass: emptiness anywhere in the
    tree propagates to the root through the semijoins (a reducer with no
    shared variables empties its target when it is itself empty), so
    non-emptiness of the reduced root answers the Boolean question — this
    path is unchanged from the Boolean-only engine.

    ``count``/``select`` lower to the *full reducer*: the upward pass is
    followed by a downward calibration pass (every relation semijoined by
    its already-calibrated parent), after which no tuple is dangling.  The
    output is then assembled top-down along the join tree — each reduced
    relation joined in root-first, with intermediates projected onto the
    output variables plus the join keys still needed — which is the
    Yannakakis enumeration whose intermediate sizes stay bounded by input
    plus output, finished by the verb's Count/Enumerate sink.

    A ``select`` with streaming :class:`SelectOptions` (``order="stream"``
    or ``"ranked"``) skips the materialized top-down join entirely: the
    calibrated frontier relations are handed to a streaming
    :class:`Enumerate` sink — carrying the join-tree ``parents`` indices
    so ranked mode can recalibrate restrictions — and the VM performs the
    enumeration join lazily, stopping once the limit is reached.
    """
    check_verb(verb)
    from ..db.joins import _gyo_join_tree

    order = _gyo_join_tree(query)
    nodes: Dict[str, Operator] = {
        atom.relation: scan for atom, scan in zip(query.atoms, scan_atoms(query))
    }
    for name, parent in order:
        if parent is not None:
            nodes[parent] = Semijoin(nodes[parent], nodes[name])
    root_name = order[-1][0]
    if verb == "exists":
        return Program(NonEmpty(nodes[root_name]), source="yannakakis")
    if query.is_boolean:
        # A Boolean head outputs the nullary projection — 1/0 by
        # non-emptiness, which the upward pass alone already decides; the
        # downward calibration and enumeration join would be pure waste.
        return Program(
            _output_sink(nodes[root_name], query, verb), source="yannakakis"
        )

    # Downward calibration: walk the ear-removal order root-first; every
    # node's parent is already fully calibrated when the node is reduced.
    for name, parent in reversed(order):
        if parent is not None:
            nodes[name] = Semijoin(nodes[name], nodes[parent])

    # Top-down enumeration join (root first, parents always before their
    # children), projecting early onto outputs + still-needed join keys.
    sequence = [name for name, _ in reversed(order)]
    if verb == "select" and select_options is not None and select_options.streaming:
        # Join-tree parents as indices into [root, *frontiers]: the ranked
        # stream's semijoin recalibration sweeps follow exactly these edges.
        parent_of = {name: parent for name, parent in order}
        parents = tuple(
            sequence.index(parent_of[name]) for name in sequence[1:]
        )
        return Program(
            Enumerate(
                nodes[sequence[0]],
                tuple(nodes[name] for name in sequence[1:]),
                tuple(query.output_variables),
                select_options.limit,
                select_options.order,
                parents,
            ),
            source="yannakakis",
        )
    scopes = {atom.relation: atom.variable_set for atom in query.atoms}
    outputs = set(query.output_variables)
    joined = nodes[sequence[0]]
    for position, name in enumerate(sequence[1:], start=1):
        joined = Join(joined, nodes[name])
        needed = set(outputs)
        for later in sequence[position + 1:]:
            needed |= scopes[later]
        joined = _project(joined, [v for v in joined.schema if v in needed])
    return Program(_output_sink(joined, query, verb), source="yannakakis")


# ----------------------------------------------------------------------
# ω-query plans
# ----------------------------------------------------------------------
@dataclass
class LoweredStep:
    """One plan step and the operators that realize it."""

    step: PlanStep
    incident: Tuple[Operator, ...]
    produced: Optional[Operator]
    #: Operators created for this step (joins, the projection / MM node).
    created: Tuple[Operator, ...] = ()


def _collect_created(
    produced: Operator, incident: Sequence[Operator]
) -> Tuple[Operator, ...]:
    """The operators of a step's subtree, excluding the pre-existing inputs."""
    stop = set(incident)
    seen: set = set()
    created: List[Operator] = []

    def visit(node: Operator) -> None:
        if node in stop or node in seen:
            return
        seen.add(node)
        for child in node.children:
            visit(child)
        created.append(node)

    visit(produced)
    return tuple(created)


@dataclass
class LoweredPlan:
    """A lowered ω-query plan: the program plus per-step role records."""

    program: Program
    steps: List[LoweredStep] = field(default_factory=list)


def lower_plan(
    query: ConjunctiveQuery, database: Optional[Database], plan: OmegaQueryPlan
) -> LoweredPlan:
    """Lower an ω-query plan's elimination steps to the IR.

    Mirrors the elimination semantics of the legacy executor: each step
    joins (or matrix-multiplies) the relations incident to its block and
    projects the block away; the Boolean answer is the conjunction of
    non-emptiness over every nullary intermediate and every leftover
    relation.  Side-splitting for MM steps and the realizability checks
    happen here, statically, from the operator schemas.
    """
    nodes: List[Operator] = list(scan_atoms(query))
    steps: List[LoweredStep] = []
    checks: List[Operator] = []
    for step in plan.steps:
        block = step.block
        incident = [n for n in nodes if n.variables & block]
        others = [n for n in nodes if not (n.variables & block)]
        if not incident:
            # Variables mentioned by no remaining relation are unconstrained.
            steps.append(LoweredStep(step=step, incident=(), produced=None))
            continue
        if step.method is StepMethod.FOR_LOOPS:
            joined = _fold_joins(incident, database)
            keep = [v for v in joined.schema if v not in block]
            produced = _project(joined, keep)
        else:
            assert step.mm_term is not None
            produced = _lower_mm_step(incident, step, database)
        steps.append(
            LoweredStep(
                step=step,
                incident=tuple(incident),
                produced=produced,
                created=_collect_created(produced, incident),
            )
        )
        if produced.schema:
            nodes = others + [produced]
        else:
            nodes = others
            checks.append(NonEmpty(produced))
    checks.extend(NonEmpty(n) for n in nodes)
    root: Operator = checks[0] if len(checks) == 1 else All_(tuple(checks))
    return LoweredPlan(program=Program(root, source="omega-plan"), steps=steps)


def _lower_mm_step(
    incident: Sequence[Operator], step: PlanStep, database: Optional[Database]
) -> Operator:
    """Split the incident operators into matrix sides and emit a GroupedMatMul."""
    term = step.mm_term
    assert term is not None
    first, second = term.first, term.second
    block, group_by = term.eliminated, term.group_by
    a_side: List[Operator] = []
    b_side: List[Operator] = []
    for node in incident:
        touches_first = bool(node.variables & first)
        touches_second = bool(node.variables & second)
        if touches_first and touches_second:
            raise ValueError(
                f"relation over {sorted(node.variables)} spans both matrix "
                f"dimensions of {term.label()}; the term is not realizable"
            )
        if touches_first:
            a_side.append(node)
        elif touches_second:
            b_side.append(node)
        else:
            # Only eliminated/group-by variables: constrain both sides
            # (Definition 4.5 allows the hyperedge families to overlap).
            a_side.append(node)
            b_side.append(node)
    if not a_side or not b_side:
        raise ValueError(f"cannot realize {term.label()}: one matrix side is empty")
    a_joined = _fold_joins(a_side, database)
    b_joined = _fold_joins(b_side, database)
    if not first <= a_joined.variables or not second <= b_joined.variables:
        raise ValueError(
            f"term {term.label()} does not match the incident relations: the outer "
            "dimensions are not covered by the two matrix sides"
        )
    if not block <= a_joined.variables or not block <= b_joined.variables:
        raise ValueError(
            f"term {term.label()} does not cover the eliminated block on both "
            "matrix sides; the term is not realizable on these relations"
        )
    common_group = sorted(group_by & a_joined.variables & b_joined.variables)
    a_extra = sorted((group_by & a_joined.variables) - set(common_group))
    b_extra = sorted((group_by & b_joined.variables) - set(common_group))
    return GroupedMatMul(
        a_joined,
        b_joined,
        row_variables=tuple(sorted(first) + a_extra),
        inner_variables=tuple(sorted(block)),
        col_variables=tuple(sorted(second) + b_extra),
        group_variables=tuple(common_group),
    )


# ----------------------------------------------------------------------
# Triangle (Figure 1)
# ----------------------------------------------------------------------
@dataclass
class TriangleRoles:
    """Operators whose traces reconstruct the Figure-1 report."""

    threshold: int
    light_joins: Tuple[Operator, ...]
    light_checks: Tuple[Operator, ...]
    heavy_matmul: Operator
    heavy_check: Operator


def lower_triangle(
    database: Database,
    omega: float,
    threshold: Optional[int] = None,
) -> Tuple[Program, TriangleRoles]:
    """Figure 1 as an IR DAG: three light join branches plus the heavy MM."""
    r = Scan("R", ("X", "Y"))
    s = Scan("S", ("Y", "Z"))
    t = Scan("T", ("X", "Z"))
    n = max(len(database["R"]), len(database["S"]), len(database["T"]), 1)
    delta = threshold if threshold is not None else triangle_threshold(n, omega)

    light_joins = []
    light_checks = []
    for light_source, given, closing, missing in (
        (r, ("X",), t, s),  # Q_{ℓ,1}: T(X,Z) ⋈ R_ℓ(X,Y), then check S(Y,Z)
        (s, ("Y",), r, t),  # Q_{ℓ,2}: R(X,Y) ⋈ S_ℓ(Y,Z), then check T(X,Z)
        (t, ("Z",), s, r),  # Q_{ℓ,3}: S(Y,Z) ⋈ T_ℓ(Z,X), then check R(X,Y)
    ):
        light = LightPart(light_source, given, delta)
        joined = Join(closing, light)
        light_joins.append(joined)
        light_checks.append(NonEmpty(Semijoin(joined, missing)))

    heavy_x = HeavyPart(r, ("X",), delta)
    heavy_y = HeavyPart(s, ("Y",), delta)
    heavy_z = HeavyPart(t, ("Z",), delta)
    m1 = Restrict(Restrict(r, "X", heavy_x, "X"), "Y", heavy_y, "Y")
    m2 = Restrict(Restrict(s, "Y", heavy_y, "Y"), "Z", heavy_z, "Z")
    mm = MatMul(m1, m2, ("X",), ("Y",), ("Z",))
    heavy_check = NonEmpty(Semijoin(_project(t, ("X", "Z")), mm))

    root = Any_(tuple(light_checks) + (heavy_check,))
    roles = TriangleRoles(
        threshold=delta,
        light_joins=tuple(light_joins),
        light_checks=tuple(light_checks),
        heavy_matmul=mm,
        heavy_check=heavy_check,
    )
    return Program(root, source="triangle-figure1"), roles


# ----------------------------------------------------------------------
# 4-cycle (adaptive degree split)
# ----------------------------------------------------------------------
@dataclass
class FourCycleRoles:
    """Operators whose traces reconstruct the adaptive 4-cycle report."""

    threshold: int
    light_restricts: Tuple[Operator, ...]
    matmuls: Tuple[Operator, ...]


def _lower_two_paths(
    left: Operator,
    right: Operator,
    middle: str,
    endpoints: Tuple[str, str],
    delta: int,
) -> Tuple[Operator, Tuple[Operator, ...], Operator]:
    """All endpoint pairs connected through ``middle``, split by degree.

    Returns ``(pairs, light restrict nodes, matmul node)``: light middle
    values expand through a join, heavy middle values through a Boolean
    matrix multiplication; the union is the 2-path reachability relation.
    """
    first, second = endpoints
    middle_values = Semijoin(_project(left, (middle,)), _project(right, (middle,)))
    heavy_union = Union(
        (HeavyPart(left, (middle,), delta), HeavyPart(right, (middle,), delta))
    )
    heavy = Semijoin(middle_values, heavy_union)
    light = Antijoin(middle_values, heavy_union)

    light_left = Restrict(left, middle, light, middle)
    light_right = Restrict(right, middle, light, middle)
    light_pairs = _project(Join(light_left, light_right), (first, second))

    heavy_left = Restrict(left, middle, heavy, middle)
    heavy_right = Restrict(right, middle, heavy, middle)
    matmul = MatMul(heavy_left, heavy_right, (first,), (middle,), (second,))
    pairs = Union((light_pairs, matmul))
    return pairs, (light_left, light_right), matmul


def lower_four_cycle(
    database: Database,
    omega: float,
    threshold: Optional[int] = None,
) -> Tuple[Program, FourCycleRoles]:
    """The adaptive 4-cycle strategy (Lemma C.9) as an IR DAG."""
    r = Scan("R", ("X", "Y"))
    s = Scan("S", ("Y", "Z"))
    t = Scan("T", ("Z", "W"))
    u = Scan("U", ("W", "X"))
    n = max(len(database["R"]), len(database["S"]), len(database["T"]), len(database["U"]), 1)
    delta = threshold if threshold is not None else triangle_threshold(n, omega)

    through_y, light_y, mm_y = _lower_two_paths(r, s, "Y", ("X", "Z"), delta)
    through_w, light_w, mm_w = _lower_two_paths(
        _project(u, ("X", "W")), _project(t, ("W", "Z")), "W", ("X", "Z"), delta
    )
    witness = Semijoin(through_y, through_w)
    roles = FourCycleRoles(
        threshold=delta,
        light_restricts=light_y + light_w,
        matmuls=(mm_y, mm_w),
    )
    return Program(NonEmpty(witness), source="four-cycle-adaptive"), roles


# ----------------------------------------------------------------------
# k-clique (Nešetřil–Poljak)
# ----------------------------------------------------------------------
def lower_clique(
    group_a: Sequence[Tuple[int, ...]],
    group_b: Sequence[Tuple[int, ...]],
    group_c: Sequence[Tuple[int, ...]],
    compatible,
) -> Tuple[Program, Database]:
    """The three-way clique split as a triangle over compatible-clique relations.

    The groups (cliques of sizes ⌈k/3⌉, ⌈(k-1)/3⌉, ⌊k/3⌋) are enumerated by
    the caller; this builds the pairwise compatibility relations ``AB``,
    ``BC``, ``AC`` over group indices and lowers the detection to
    ``NonEmpty(AC ⋉ MatMul(AB; B; BC))`` — exactly the GVEO σ = (A, B, C)
    with MM term ``MM(B; C; A)`` of Lemma C.8.
    """
    from ..db.relation import Relation

    index_a = {clique: i for i, clique in enumerate(group_a)}
    index_b = {clique: i for i, clique in enumerate(group_b)}
    index_c = {clique: i for i, clique in enumerate(group_c)}
    ab = [
        (i, j)
        for a_clique, i in index_a.items()
        for b_clique, j in index_b.items()
        if compatible(a_clique, b_clique)
    ]
    bc = [
        (j, k)
        for b_clique, j in index_b.items()
        for c_clique, k in index_c.items()
        if compatible(b_clique, c_clique)
    ]
    ac = [
        (i, k)
        for a_clique, i in index_a.items()
        for c_clique, k in index_c.items()
        if compatible(a_clique, c_clique)
    ]
    compat_db = Database(
        {
            "AB": Relation(("A", "B"), ab),
            "BC": Relation(("B", "C"), bc),
            "AC": Relation(("A", "C"), ac),
        }
    )
    mm = MatMul(Scan("AB", ("A", "B")), Scan("BC", ("B", "C")), ("A",), ("B",), ("C",))
    root = NonEmpty(Semijoin(Scan("AC", ("A", "C")), mm))
    return Program(root, source="clique-mm"), compat_db
