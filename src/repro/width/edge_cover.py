"""Fractional edge covers, the AGM bound, and related LP quantities.

The fractional edge cover number ``ρ*(H)`` (Definition C.1) bounds the
join size of any query by ``N^{ρ*}`` (the AGM bound) and is the exponent
achieved by worst-case-optimal join algorithms.  It also upper-bounds
``h(V)`` for every edge-dominated polymatroid (Proposition C.2), a fact the
clique lower-bound proofs rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..hypergraph.hypergraph import Hypergraph, VertexSet


def fractional_edge_cover(
    hypergraph: Hypergraph, target: Optional[Iterable[str]] = None
) -> Tuple[float, Dict[VertexSet, float]]:
    """The optimal fractional edge cover of ``target`` (default: all vertices).

    Returns ``(ρ*, weights)`` where ``weights`` maps each hyperedge to its
    weight in an optimal cover.  Every vertex of ``target`` must be covered
    with total weight at least 1; vertices outside ``target`` are
    unconstrained.  Raises ``ValueError`` if some target vertex appears in
    no hyperedge (the cover LP would be infeasible).
    """
    edges = sorted(hypergraph.edges, key=lambda e: tuple(sorted(e)))
    vertices = sorted(target) if target is not None else list(hypergraph.sorted_vertices())
    for vertex in vertices:
        if not any(vertex in edge for edge in edges):
            raise ValueError(f"vertex {vertex!r} is not covered by any hyperedge")
    if not vertices:
        return 0.0, {edge: 0.0 for edge in edges}
    num_edges = len(edges)
    # minimize sum of weights subject to coverage >= 1 per target vertex.
    c = np.ones(num_edges)
    a_ub = np.zeros((len(vertices), num_edges))
    for row, vertex in enumerate(vertices):
        for col, edge in enumerate(edges):
            if vertex in edge:
                a_ub[row, col] = -1.0
    b_ub = -np.ones(len(vertices))
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * num_edges, method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"edge cover LP failed: {result.message}")
    weights = {edge: float(w) for edge, w in zip(edges, result.x)}
    return float(result.fun), weights


def fractional_edge_cover_number(
    hypergraph: Hypergraph, target: Optional[Iterable[str]] = None
) -> float:
    """``ρ*(H)`` (or ``ρ*_H(target)`` when a vertex subset is given)."""
    value, _ = fractional_edge_cover(hypergraph, target)
    return value


def agm_bound(
    hypergraph: Hypergraph, relation_sizes: Mapping[VertexSet, int] | Mapping[frozenset, int]
) -> float:
    """The AGM bound ``∏_e |R_e|^{w_e}`` with an optimal fractional cover.

    ``relation_sizes`` maps each hyperedge to the size of its relation.  The
    weights are optimized for the *given sizes* (the weighted cover LP), not
    just for the uniform-size case.
    """
    edges = sorted(hypergraph.edges, key=lambda e: tuple(sorted(e)))
    sizes = {frozenset(edge): max(1, int(size)) for edge, size in relation_sizes.items()}
    missing = [edge for edge in edges if edge not in sizes]
    if missing:
        raise ValueError(f"missing sizes for edges: {missing}")
    vertices = list(hypergraph.sorted_vertices())
    log_sizes = np.array([np.log2(sizes[edge]) for edge in edges])
    a_ub = np.zeros((len(vertices), len(edges)))
    for row, vertex in enumerate(vertices):
        for col, edge in enumerate(edges):
            if vertex in edge:
                a_ub[row, col] = -1.0
    b_ub = -np.ones(len(vertices))
    result = linprog(
        log_sizes, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * len(edges), method="highs"
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"AGM LP failed: {result.message}")
    return float(2.0 ** result.fun)


def fractional_vertex_cover_number(hypergraph: Hypergraph) -> float:
    """The fractional vertex cover number (LP dual of maximum matching)."""
    vertices = list(hypergraph.sorted_vertices())
    edges = sorted(hypergraph.edges, key=lambda e: tuple(sorted(e)))
    index = {v: i for i, v in enumerate(vertices)}
    c = np.ones(len(vertices))
    a_ub = np.zeros((len(edges), len(vertices)))
    for row, edge in enumerate(edges):
        for vertex in edge:
            a_ub[row, index[vertex]] = -1.0
    b_ub = -np.ones(len(edges))
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * len(vertices), method="highs"
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"vertex cover LP failed: {result.message}")
    return float(result.fun)
