"""Tests for the unified physical-operator layer: IR, lowering, optimizer, VM."""

from __future__ import annotations

import pytest

from repro.api import QueryEngine
from repro.constants import OMEGA_BEST_KNOWN
from repro.db import (
    Database,
    Relation,
    naive_boolean,
    parse_query,
    random_database,
    triangle_instance,
)
from repro.exec import (
    Join,
    NonEmpty,
    Project,
    Scan,
    Semijoin,
    Wcoj,
    eliminate_common_subexpressions,
    fuse_semijoins,
    lower_naive,
    lower_plan,
    lower_yannakakis,
    optimize_program,
    prune_operators,
    run_program,
)
from repro.exec.ir import Program

OMEGA = OMEGA_BEST_KNOWN
TRIANGLE = parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)")
CHAIN = parse_query("Q() :- R(A, B), S(B, C), T(C, D)")


def chain_database(seed: int = 0, rows: int = 40) -> Database:
    return random_database(CHAIN, rows, domain_size=10, seed=seed, plant_witness=True)


class TestIRConstruction:
    def test_schema_inference(self):
        r = Scan("R", ("X", "Y"))
        s = Scan("S", ("Y", "Z"))
        join = Join(r, s)
        assert join.schema == ("X", "Y", "Z")
        assert Project(join, ("X", "Z")).schema == ("X", "Z")
        assert Semijoin(r, s).schema == ("X", "Y")
        assert NonEmpty(r).boolean and NonEmpty(r).schema == ()

    def test_unknown_variable_rejected(self):
        r = Scan("R", ("X", "Y"))
        with pytest.raises(ValueError, match="not in schema"):
            Project(r, ("Q",))

    def test_wcoj_order_must_cover_variables(self):
        r = Scan("R", ("X", "Y"))
        with pytest.raises(ValueError, match="cover exactly"):
            Wcoj((r,), ("X",), False)

    def test_validation_errors_carry_input_schemas(self):
        r = Scan("R", ("X", "Y"))
        with pytest.raises(ValueError, match=r"in Project; input schemas: \(X, Y\)"):
            Project(r, ("Q",))
        s = Scan("S", ("Y", "Z"))
        with pytest.raises(ValueError, match=r"in Wcoj; input schemas: \(X, Y\); \(Y, Z\)"):
            Wcoj((r, s), ("X",), False)

    def test_validate_reports_program_position(self):
        program = lower_naive(TRIANGLE)
        node = program.nodes()[0]
        node.validate(program)  # a sound node round-trips silently
        bad = Project(Scan("R", ("X", "Y")), ("X",))
        object.__setattr__(bad, "variables_out", ("Q",))
        wrapped = Program(bad)
        position = wrapped.node_ids()[bad]
        with pytest.raises(ValueError, match=f"operator #{position} of the program"):
            bad.validate(wrapped)

    def test_structural_key_is_name_insensitive(self):
        a = Semijoin(Scan("R", ("X", "Y")), Scan("S", ("Y", "Z")))
        b = Semijoin(Scan("R", ("P", "Q")), Scan("S", ("Q", "V")))
        assert a != b  # equality stays name-sensitive
        assert a.skey == b.skey  # structure is identical up to renaming
        # Different shared-variable positions -> different structure.
        c = Semijoin(Scan("R", ("P", "Q")), Scan("S", ("P", "V")))
        assert a.skey != c.skey

    def test_program_describe_names_every_operator(self):
        program = lower_naive(TRIANGLE)
        text = program.describe()
        for node in program.nodes():
            assert node.label() in text
        assert text.count("#") >= len(program.nodes())

    def test_rename_roundtrip(self):
        program = lower_yannakakis(CHAIN)
        mapping = {"A": "v0", "B": "v1", "C": "v2", "D": "v3"}
        renamed = program.rename(mapping)
        back = renamed.rename({v: k for k, v in mapping.items()})
        assert back.root == program.root
        assert renamed.root.skey == program.root.skey


class TestLoweringEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("backend", ["set", "columnar"])
    def test_all_strategies_agree_on_ir_path(self, seed, backend):
        db = random_database(
            TRIANGLE, 30, domain_size=8, seed=seed, plant_witness=(seed % 2 == 0),
            backend=backend,
        )
        engine = QueryEngine(db, omega=OMEGA)
        answers = {
            strategy: engine.ask(TRIANGLE, strategy=strategy).answer
            for strategy in ("naive", "generic_join", "omega")
        }
        assert len(set(answers.values())) == 1

    def test_every_builtin_strategy_lowers(self):
        db = chain_database()
        engine = QueryEngine(db, omega=OMEGA)
        for strategy in ("naive", "generic_join", "yannakakis", "omega"):
            result = engine.ask(CHAIN, strategy=strategy)
            assert result.program is not None, strategy
            assert result.execution is not None
            assert result.execution.operators, strategy

    def test_lowered_plan_matches_legacy_answer(self):
        from repro.core import plan_query

        db = triangle_instance(60, domain_size=14, seed=3, plant_triangle=True)
        plan = plan_query(TRIANGLE, db, OMEGA).plan
        lowered = lower_plan(TRIANGLE, db, plan)
        result = run_program(lowered.program, db)
        assert result.answer == naive_boolean(TRIANGLE, db)
        assert len(lowered.steps) == len(plan.steps)


class TestOptimizer:
    def test_fusion_builds_multisemijoin(self):
        # Three leaves keep the centre as the GYO parent of two ears, so
        # its reductions chain on the *target* side and are fusable.
        flower = parse_query(
            "Q() :- Root(C0, C1, C2), L0(C0, X0), L1(C1, X1), L2(C2, X2)"
        )
        program, _ = eliminate_common_subexpressions(lower_yannakakis(flower))
        fused, count = fuse_semijoins(program)
        assert count >= 1
        kinds = [node.kind() for node in fused.nodes()]
        assert "multisemijoin" in kinds
        db = random_database(flower, 30, domain_size=6, seed=1, plant_witness=True)
        assert run_program(fused, db).answer == run_program(program, db).answer

    def test_fusion_preserves_answers_randomized(self):
        flower = parse_query("Q() :- Root(C0, C1, C2), L0(C0, X), L1(C1, Y), L2(C2, Z)")
        for seed in range(6):
            db = random_database(
                flower, 25, domain_size=5, seed=seed, plant_witness=(seed % 2 == 0)
            )
            raw = lower_yannakakis(flower)
            optimized, stats = optimize_program(raw)
            assert run_program(raw, db).answer == run_program(optimized, db).answer
            assert stats.nodes_after <= stats.nodes_before

    def test_cse_merges_duplicate_subtrees(self):
        r = Scan("R", ("X", "Y"))
        duplicated = Join(Semijoin(r, Scan("S", ("Y",))), Semijoin(r, Scan("S", ("Y",))))
        program, merged = eliminate_common_subexpressions(Program(duplicated))
        assert merged >= 1

    def test_prune_drops_identity_projection(self):
        r = Scan("R", ("X", "Y"))
        program = Program(NonEmpty(Project(r, ("X", "Y"))))
        pruned, dropped = prune_operators(program)
        assert dropped == 1
        assert all(node.kind() != "project" for node in pruned.nodes())


class TestVM:
    def test_operator_traces_cover_rows_and_kernel(self):
        db = chain_database()
        result = run_program(lower_naive(CHAIN), db)
        assert result.answer == naive_boolean(CHAIN, db)
        assert result.traces
        kinds = {trace.kind for trace in result.traces}
        assert "scan" in kinds and "join" in kinds and "nonempty" in kinds
        for trace in result.traces:
            assert trace.rows_out >= 0
            assert trace.kernel in ("set", "columnar", "bool")

    def test_trace_seconds_sum_to_total(self):
        db = chain_database()
        result = run_program(lower_naive(CHAIN), db)
        assert 0.0 < sum(t.seconds for t in result.traces) <= result.seconds

    def test_empty_scan_short_circuits_join(self):
        db = Database(
            {
                "R": Relation(("X", "Y"), []),
                "S": Relation(("Y", "Z"), [(1, 2)]),
                "T": Relation(("X", "Z"), [(1, 2)]),
            }
        )
        result = run_program(lower_naive(TRIANGLE), db)
        assert not result.answer
        evaluated = {trace.label for trace in result.traces}
        assert "Scan S(Y, Z)" not in evaluated  # right side never touched

    def test_semijoin_many_matches_sequential_fold(self):
        import random

        rng = random.Random(7)
        for backend in ("set", "columnar"):
            target = Relation(
                ("A", "B"),
                [(rng.randrange(8), rng.randrange(8)) for _ in range(40)],
                backend=backend,
            )
            reducers = [
                Relation(
                    ("A",), [(rng.randrange(8),) for _ in range(6)], backend=backend
                ),
                Relation(
                    ("B",), [(rng.randrange(8),) for _ in range(6)], backend=backend
                ),
            ]
            fused = target.semijoin_many(reducers)
            sequential = target.semijoin(reducers[0]).semijoin(reducers[1])
            assert fused.rows == sequential.rows


class TestEngineResultCache:
    def test_repeated_ask_hits_result_cache(self):
        db = chain_database()
        engine = QueryEngine(db, omega=OMEGA)
        first = engine.ask(CHAIN, strategy="yannakakis")
        second = engine.ask(CHAIN, strategy="yannakakis")
        assert first.answer == second.answer
        assert engine.result_cache_info().hits > 0

    def test_isomorphic_batch_shares_subplans(self):
        db = chain_database()
        renamed = parse_query("Q2() :- R(P, Q), S(Q, V), T(V, W)")
        engine = QueryEngine(db, omega=OMEGA)
        results = engine.ask_many([CHAIN, renamed], strategy="yannakakis")
        assert len({r.answer for r in results}) == 1
        stats = engine.result_cache_info()
        assert stats.hits > 0  # the renamed member reused cached results

    def test_mutation_invalidates_result_cache(self):
        db = chain_database()
        engine = QueryEngine(db, omega=OMEGA)
        engine.ask(CHAIN, strategy="yannakakis")
        hits_before = engine.result_cache_info().hits
        # Empty one relation: the answer must flip to False, cached results
        # keyed by the old fingerprint must not be served.
        db["R"] = Relation(("X", "Y"), [])
        result = engine.ask(CHAIN, strategy="yannakakis")
        assert result.answer is False
        assert engine.result_cache_info().hits == hits_before

    def test_result_cache_disabled(self):
        db = chain_database()
        engine = QueryEngine(db, omega=OMEGA, result_cache_size=0)
        engine.ask(CHAIN, strategy="yannakakis")
        engine.ask(CHAIN, strategy="yannakakis")
        stats = engine.result_cache_info()
        assert stats.hits == 0 and stats.size == 0


class TestExplainRendersDag:
    def test_explain_names_every_operator(self):
        db = triangle_instance(60, domain_size=14, seed=2, plant_triangle=True)
        engine = QueryEngine(db, omega=OMEGA)
        explanation = engine.explain(TRIANGLE, strategy="omega")
        assert explanation.program is not None
        text = explanation.describe()
        assert "operators:" in text
        for node in explanation.program.nodes():
            assert node.label() in text

    def test_explain_renders_dag_for_non_planning_strategies(self):
        db = chain_database()
        engine = QueryEngine(db, omega=OMEGA)
        explanation = engine.explain(CHAIN, strategy="yannakakis")
        assert explanation.program is not None
        assert "Scan" in explanation.describe()

    def test_per_step_traces_sum_to_execute_time(self):
        db = triangle_instance(80, domain_size=18, seed=5, plant_triangle=True)
        engine = QueryEngine(db, omega=OMEGA)
        result = engine.ask(TRIANGLE, strategy="omega")
        execution = result.execution
        assert execution is not None and execution.operators
        operator_seconds = sum(t.seconds for t in execution.operators)
        assert 0.0 < operator_seconds <= execution.seconds
        assert execution.seconds <= result.execute_seconds + 1e-9

    def test_cache_provenance_survives_ir_cached_plans(self):
        db = triangle_instance(60, domain_size=14, seed=4, plant_triangle=True)
        engine = QueryEngine(db, omega=OMEGA)
        first = engine.explain(TRIANGLE, strategy="omega")
        assert not first.cache_hit and first.program is not None
        second = engine.explain(TRIANGLE, strategy="omega")
        assert second.cache_hit  # the plan (and its IR) came from the cache
        assert second.program is not None
        assert second.program.root.skey == first.program.root.skey
        # The ask after an explain reuses the cached IR and reports it.
        result = engine.ask(TRIANGLE, strategy="omega")
        assert result.cache_hit and result.plan_source == "cache"
        assert result.program is not None

    def test_shape_signature_collision_does_not_share_programs(self):
        # These two queries share a shape signature (scopes are sorted
        # within atoms) and bind the same relations, but wire F's and G's
        # columns differently — the cached IR of one must not answer the
        # other.  Regression test for the order-sensitive binding check.
        q1 = parse_query("Q() :- E(X, Y), F(Y, X), G(X, Y)")
        q2 = parse_query("Q() :- E(X, Y), F(X, Y), G(Y, X)")
        db = Database(
            {
                "E": Relation(("A", "B"), [(1, 2)]),
                "F": Relation(("A", "B"), [(1, 2)]),
                "G": Relation(("A", "B"), [(2, 1)]),
            }
        )
        assert q1.shape_signature() == q2.shape_signature()
        engine = QueryEngine(db, omega=OMEGA)
        first = engine.ask(q1, strategy="omega")
        second = engine.ask(q2, strategy="omega")
        assert first.answer == naive_boolean(q1, db)
        assert second.answer == naive_boolean(q2, db)
        assert second.answer is True and first.answer is False

    def test_isomorphic_query_over_other_relations_relowers(self):
        db = triangle_instance(60, domain_size=14, seed=6, plant_triangle=True)
        both = Database(
            dict(list(db.items()) + [("A", db["R"]), ("B", db["S"]), ("C", db["T"])])
        )
        renamed = parse_query("Q() :- A(U, V), B(V, W), C(U, W)")
        engine = QueryEngine(both, omega=OMEGA)
        engine.ask(TRIANGLE, strategy="omega")
        result = engine.ask(renamed, strategy="omega")
        assert result.cache_hit  # the plan is shared ...
        assert result.program is not None
        scans = {n.relation for n in result.program.nodes() if n.kind() == "scan"}
        assert scans == {"A", "B", "C"}  # ... but the IR scans *its* relations


class TestLegacyWrapperDeprecation:
    def test_answer_boolean_query_warns(self):
        from repro.core import answer_boolean_query

        db = triangle_instance(30, domain_size=10, seed=0, plant_triangle=True)
        with pytest.warns(DeprecationWarning, match="QueryEngine"):
            report = answer_boolean_query(TRIANGLE, db, strategy="naive")
        assert report.answer is True
