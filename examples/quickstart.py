"""Quickstart: widths and query answering in a few lines.

Run with::

    python examples/quickstart.py

The script (1) computes the classical and ω-aware width measures of the
triangle query, (2) builds a small synthetic database, and (3) answers the
Boolean triangle query with several strategies, checking they agree.
"""

from __future__ import annotations

from repro.constants import OMEGA_BEST_KNOWN
from repro.core import answer_boolean_query, compare_strategies, triangle_figure1
from repro.db import parse_query, triangle_instance
from repro.hypergraph import triangle
from repro.polymatroid import triangle_witness
from repro.width import (
    fractional_edge_cover_number,
    fractional_hypertree_width,
    omega_submodular_width,
    submodular_width,
)


def main() -> None:
    omega = OMEGA_BEST_KNOWN
    hypergraph = triangle()

    print("=== Width measures of the triangle query Q△ ===")
    print(f"fractional edge cover ρ*     : {fractional_edge_cover_number(hypergraph):.4f}")
    print(f"fractional hypertree width   : {fractional_hypertree_width(hypergraph).value:.4f}")
    print(f"submodular width             : {submodular_width(hypergraph).value:.4f}")
    osubw = omega_submodular_width(hypergraph, omega, seeds=[triangle_witness(omega)])
    print(f"ω-submodular width (ω={omega:.4f}): {osubw.value:.4f}")
    print(f"paper closed form 2ω/(ω+1)   : {2 * omega / (omega + 1):.4f}")
    print()

    print("=== Answering the Boolean triangle query ===")
    query = parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)")
    database = triangle_instance(
        num_edges=2_000, domain_size=200, skew="heavy", plant_triangle=True, seed=42
    )
    print(f"database size N = {database.size} tuples")

    reports = compare_strategies(query, database, omega=omega)
    for name, report in sorted(reports.items()):
        print(f"  strategy {name:<13s} answer={report.answer}  time={report.seconds * 1e3:7.2f} ms")

    figure1 = triangle_figure1(database, omega)
    print(
        f"  Figure-1 algorithm     answer={figure1.answer}  "
        f"time={figure1.seconds * 1e3:7.2f} ms  "
        f"(Δ={figure1.threshold}, found in the {figure1.found_in} part)"
    )

    print()
    print("=== The engine's chosen plan ===")
    report = answer_boolean_query(query, database, strategy="omega", omega=omega)
    print(report.describe())


if __name__ == "__main__":
    main()
