"""Static plan verifier: pass coverage, engine wiring, and front doors.

Three layers under test:

* the verifier passes themselves — each one is exercised against a
  deliberately broken program (corrupted schemas, forged structural keys,
  stripped enumeration parents, mismatched verbs) and must produce the
  matching :class:`~repro.analysis.verify.Violation`;
* the engine wiring — ``QueryEngine(verify_plans=...)`` verifies every
  program it lowers (the whole suite runs this way via ``conftest``), and
  :meth:`QueryEngine.verify` reports violations without raising;
* the front doors — ``EXPLAIN VERIFY`` statements and the ``repro
  verify`` CLI verb.

Plus the regression pinned by this PR: the optimizer's node rebuilder
must carry ``Enumerate.parents`` through rewrites — dropping them
silently degrades ranked (any-k) enumeration to derived-parent guessing,
which is exactly what the ``enumerate`` pass rejects.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import (
    PlanVerificationError,
    _Context,
    assert_verified,
    check_cache_keys,
    check_skey_soundness,
    verify_program,
)
from repro.api import QueryEngine
from repro.db import Database, parse_query, random_database
from repro.exec.ir import Count, Enumerate, Join, Program, Project, Scan
from repro.exec.lower import SelectOptions, lower_naive, lower_yannakakis
from repro.exec.optimize import optimize_program
from repro.lang.parser import parse_statement
from repro.lang.session import Session

TRIANGLE = parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)")
CHAIN_SELECT = parse_query("Q(A, D) :- R(A, B), S(B, C), T(C, D)")


def rules(violations):
    return {violation.rule for violation in violations}


def chain_database(backend=None):
    return random_database(CHAIN_SELECT, 30, domain_size=5, seed=11,
                           plant_witness=True, backend=backend)


# ----------------------------------------------------------------------
# Clean programs verify clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("verb", ["exists", "count", "select"])
def test_lowered_and_optimized_programs_verify(verb):
    query = TRIANGLE if verb == "exists" else CHAIN_SELECT
    program = lower_naive(query, verb=verb)
    assert verify_program(program, verb=verb) == []
    optimized, _ = optimize_program(program)
    assert verify_program(optimized, verb=verb) == []


def test_violation_and_error_rendering():
    program = lower_naive(TRIANGLE)
    bad = Program(Project(program.root.child, ("X",)), source="test")
    violations = verify_program(bad, verb="exists")
    assert violations, "verb mismatch must be reported"
    text = str(PlanVerificationError(bad, violations, stage="optimized"))
    for violation in violations:
        assert violation.describe() in text
    assert "optimized program" in text
    assert "#1" in text  # the embedded program listing


# ----------------------------------------------------------------------
# Pass 1: DAG shape
# ----------------------------------------------------------------------
def test_sink_below_root_is_flagged():
    scan = Scan("R", ("a", "b"))
    inner_sink = Enumerate(scan, (), ("a", "b"))
    program = Program(Project(inner_sink, ("a",)), source="test")
    violations = verify_program(program)
    assert "dag-shape" in rules(violations)
    assert any("root" in violation.message for violation in violations)


def test_count_root_is_fine():
    program = Program(Count(Scan("R", ("a", "b")), ("a",)), source="test")
    assert verify_program(program, verb="count") == []


# ----------------------------------------------------------------------
# Pass 2: schema consistency
# ----------------------------------------------------------------------
def test_corrupted_schema_is_flagged():
    node = Project(Scan("R", ("a", "b")), ("a",))
    object.__setattr__(node, "schema", ("zzz",))
    violations = verify_program(Program(node, source="test"))
    assert "schema" in rules(violations)


def test_scan_checked_against_database():
    db = Database().bulk_load(R=(("a", "b"), [(1, 2)]))
    unknown = Program(Scan("Missing", ("a", "b")), source="test")
    assert "schema" in rules(verify_program(unknown, database=db))
    wrong_arity = Program(Scan("R", ("a", "b", "c")), source="test")
    assert "schema" in rules(verify_program(wrong_arity, database=db))
    ok = Program(Scan("R", ("x", "y")), source="test")
    assert verify_program(ok, database=db) == []


# ----------------------------------------------------------------------
# Pass 3: structural-key soundness
# ----------------------------------------------------------------------
def test_forged_skey_collision_is_flagged():
    # Two scans of different relations with the same forged key: the
    # result cache would alias them.  The pass is called directly because
    # the schema pass re-derives (and thereby repairs) forged keys first
    # when the full pipeline runs.
    left = Scan("R", ("a", "b"))
    right = Scan("S", ("a", "b"))
    object.__setattr__(right, "skey", left.skey)
    program = Program(Join(left, right), source="test")
    violations = list(
        check_skey_soundness(program, _Context(program, None, None))
    )
    assert rules(violations) == {"skey-collision"}
    # ... and the full pipeline still rejects the program (via re-derivation).
    assert verify_program(program)


def test_rename_compatible_skey_sharing_is_allowed():
    # The same relation scanned under different variable names shares a
    # key by design — that is the cross-query cache hit.
    program = Program(
        Join(Scan("R", ("a", "b")), Scan("R", ("x", "y"))), source="test"
    )
    assert verify_program(program) == []


# ----------------------------------------------------------------------
# Pass 4 + satellite regression: the Enumerate contract
# ----------------------------------------------------------------------
def ranked_program():
    return lower_yannakakis(
        CHAIN_SELECT, verb="select",
        select_options=SelectOptions(limit=3, order="ranked"),
    )


def strip_parents(program):
    root = program.root
    assert isinstance(root, Enumerate) and root.parents
    stripped = Enumerate(
        root.child, root.frontiers, root.variables_out, root.limit, root.order
    )
    return Program(stripped, source=program.source)


def test_ranked_enumerate_without_parents_is_flagged():
    violations = verify_program(strip_parents(ranked_program()), verb="select")
    assert "enumerate" in rules(violations)
    assert any("parents" in violation.message for violation in violations)


def test_optimizer_preserves_enumerate_parents():
    # Regression: the optimizer's node rebuilder used to drop
    # ``Enumerate.parents``, silently downgrading any-k enumeration to
    # the hand-built-program fallback.
    program = ranked_program()
    optimized, _ = optimize_program(program)
    root = optimized.root
    assert isinstance(root, Enumerate)
    assert root.parents == program.root.parents != ()
    assert verify_program(optimized, verb="select") == []


def test_ranked_answers_survive_optimization():
    db = chain_database()
    engine = QueryEngine(db, verify_plans="optimized")
    ranked = [tuple(row) for row in engine.select(CHAIN_SELECT, limit=5, order="sorted")]
    full = sorted(tuple(row) for row in engine.select(CHAIN_SELECT))
    assert ranked == full[:5]


# ----------------------------------------------------------------------
# Pass 6: cache keys vs. scan closure
# ----------------------------------------------------------------------
def test_skey_scan_closure_mismatch_is_flagged():
    join = Join(Scan("R", ("a", "b")), Scan("S", ("b", "c")))
    # Forge a key recording only R while the DAG scans R and S: a delta
    # to S would never invalidate this node's cache entries.
    object.__setattr__(join, "skey", join.children[0].skey)
    program = Program(join, source="test")
    violations = list(check_cache_keys(program, _Context(program, None, None)))
    assert rules(violations) == {"cache-key"}


# ----------------------------------------------------------------------
# Pass 7: verb/sink agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "lower_verb, claim_verb",
    [("exists", "select"), ("count", "exists"), ("select", "count")],
)
def test_verb_sink_mismatch_is_flagged(lower_verb, claim_verb):
    query = TRIANGLE if lower_verb == "exists" else CHAIN_SELECT
    program = lower_naive(query, verb=lower_verb)
    assert "verb-sink" in rules(verify_program(program, verb=claim_verb))


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------
def test_engine_rejects_unknown_stage():
    with pytest.raises(ValueError, match="verify_plans"):
        QueryEngine(Database(), verify_plans="paranoid")


def test_engine_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "lowered")
    assert QueryEngine(Database()).verify_plans == "lowered"
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "off")
    assert QueryEngine(Database()).verify_plans == "off"
    # Explicit argument wins over the environment.
    assert QueryEngine(Database(), verify_plans="optimized").verify_plans == (
        "optimized"
    )


def test_assert_verified_raises_with_violations():
    bad = strip_parents(ranked_program())
    with pytest.raises(PlanVerificationError) as info:
        assert_verified(bad, verb="select", stage="optimized")
    assert info.value.stage == "optimized"
    assert {v.rule for v in info.value.violations} == {"enumerate"}
    assert assert_verified(ranked_program(), verb="select") is not None


def test_engine_verify_reports_clean():
    engine = QueryEngine(chain_database())
    for verb in ("exists", "count", "select"):
        assert engine.verify(CHAIN_SELECT, verb=verb) == []


# ----------------------------------------------------------------------
# Corpus sweep: every (query, verb, strategy) combination the engine
# routes must lower to a verifier-clean program.
# ----------------------------------------------------------------------
SWEEP_QUERIES = {
    "path": "Q(X, Z) :- R(X, Y), S(Y, Z)",
    "chain": "Q(A, D) :- R(A, B), S(B, C), T(C, D)",
    "star": "Q(X, Y) :- R(C, X), S(C, Y), T(C, Z)",
    "triangle": "Q(X, Z) :- R(X, Y), S(Y, Z), T(X, Z)",
    "four_cycle": "Q(X, Z) :- R(X, Y), S(Y, Z), T(Z, W), U(W, X)",
    "tri_tail": "Q(X, W) :- R(X, Y), S(Y, Z), T(X, Z), U(Z, W)",
}


@pytest.mark.parametrize("shape", sorted(SWEEP_QUERIES))
def test_corpus_sweep_is_verifier_clean(shape):
    query = parse_query(SWEEP_QUERIES[shape])
    db = random_database(query, 25, domain_size=6, seed=3, plant_witness=True)
    engine = QueryEngine(db, verify_plans="optimized")
    strategies = ["auto", "naive", "generic_join"]
    if query.is_acyclic():
        strategies.append("yannakakis")
    for strategy in strategies:
        for verb in ("exists", "count", "select"):
            assert engine.verify(query, strategy, verb=verb) == [], (
                f"{shape}/{strategy}/{verb} failed verification"
            )


# ----------------------------------------------------------------------
# Front doors: EXPLAIN VERIFY and the CLI verb
# ----------------------------------------------------------------------
def test_explain_verify_parses():
    statement = parse_statement("EXPLAIN VERIFY SELECT R(X, Y) LIMIT 3")
    assert statement.explain and statement.verify
    assert statement.verb == "select" and statement.limit == 3
    plain = parse_statement("EXPLAIN COUNT R(X, Y)")
    assert plain.explain and not plain.verify
    # 'verify' stays a valid relation/head name (contextual keyword).
    named = parse_statement("EXPLAIN verify(X) :- R(X, Y)")
    assert not named.verify and named.query.name == "verify"


def test_explain_verify_session_outcome():
    session = Session(database=chain_database())
    outcome = session.execute("EXPLAIN VERIFY Q(A, D) :- R(A, B), S(B, C), T(C, D)")
    assert outcome.kind == "explain"
    assert outcome.payload["violations"] == []
    assert "plan verifies (0 violations)" in outcome.describe()


def test_cli_verify_verb(capsys):
    from repro.cli import main

    assert main(["verify", "Q(X, Z) :- R(X, Y), S(Y, Z)", "--verb", "select"]) == 0
    output = capsys.readouterr().out
    assert "plan verifies (0 violations)" in output
    assert "Enumerate" in output
