"""Rectangular matrix multiplication via square blocking (Section 3).

The paper reduces rectangular matrix multiplication (``n^a × n^b`` times
``n^b × n^c``) to square multiplications of side ``n^d`` with
``d = min(a, b, c)``, yielding the exponent

``ω□(a, b, c) = a + b + c - (3 - ω)·min(a, b, c)
             = max{a + b + γc, a + γb + c, γa + b + c}``.

This module implements exactly that blocking on concrete numpy matrices —
the number of block products it performs matches the analysis — together
with the exponent computation used by the planner's cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..constants import gamma as gamma_of
from .strassen import strassen_multiply


def omega_rectangular(a: float, b: float, c: float, omega: float) -> float:
    """``ω□(a, b, c)`` of Eq. (6): the square-blocking rectangular exponent."""
    g = gamma_of(omega)
    if min(a, b, c) < 0:
        raise ValueError("matrix dimension exponents must be non-negative")
    return max(a + b + g * c, a + g * b + c, g * a + b + c)


def rectangular_cost(
    rows: int, inner: int, cols: int, omega: float
) -> float:
    """Model cost (number of scalar operations) of a blocked rectangular product.

    The blocking uses square blocks of side ``d = min(rows, inner, cols)``
    and charges ``d^ω`` per block product, matching the proof of Eq. (6).
    """
    if min(rows, inner, cols) <= 0:
        return 0.0
    d = min(rows, inner, cols)
    blocks = math.ceil(rows / d) * math.ceil(inner / d) * math.ceil(cols / d)
    return blocks * float(d) ** omega


@dataclass
class BlockedProductStats:
    """Bookkeeping returned by :func:`blocked_multiply`."""

    block_side: int
    block_products: int
    modelled_cost: float


def blocked_multiply(
    a: np.ndarray,
    b: np.ndarray,
    omega: float,
    square_kernel: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
) -> Tuple[np.ndarray, BlockedProductStats]:
    """Multiply rectangular matrices by partitioning into square blocks.

    Parameters
    ----------
    a, b:
        The factors (``rows × inner`` and ``inner × cols``).
    omega:
        Exponent used only for the *modelled* cost in the returned stats.
    square_kernel:
        The square multiplication routine applied to each block pair.  The
        default uses Strassen for large blocks and BLAS otherwise.

    Returns the product and statistics describing how many block products
    were performed (``⌈rows/d⌉·⌈inner/d⌉·⌈cols/d⌉`` with
    ``d = min(rows, inner, cols)``).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    rows, inner = a.shape
    cols = b.shape[1]
    if min(rows, inner, cols) == 0:
        return np.zeros((rows, cols), dtype=np.result_type(a.dtype, b.dtype)), (
            BlockedProductStats(block_side=0, block_products=0, modelled_cost=0.0)
        )
    if square_kernel is None:
        def square_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            if min(x.shape + y.shape) >= 256:
                return strassen_multiply(x, y)
            return x @ y

    d = min(rows, inner, cols)
    out = np.zeros((rows, cols), dtype=np.result_type(a.dtype, b.dtype, float))
    products = 0
    for row_start in range(0, rows, d):
        row_end = min(row_start + d, rows)
        for col_start in range(0, cols, d):
            col_end = min(col_start + d, cols)
            accumulator = np.zeros((row_end - row_start, col_end - col_start))
            for k_start in range(0, inner, d):
                k_end = min(k_start + d, inner)
                block_a = a[row_start:row_end, k_start:k_end]
                block_b = b[k_start:k_end, col_start:col_end]
                accumulator += square_kernel(
                    np.asarray(block_a, dtype=float), np.asarray(block_b, dtype=float)
                )
                products += 1
            out[row_start:row_end, col_start:col_end] = accumulator
    stats = BlockedProductStats(
        block_side=d,
        block_products=products,
        modelled_cost=rectangular_cost(rows, inner, cols, omega),
    )
    return out, stats
