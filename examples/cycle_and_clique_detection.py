"""Scenario: pattern detection — 4-cycles and k-cliques in one graph.

Fraud-detection and recommender pipelines routinely look for small dense
patterns (reciprocal 4-cycles, tightly-knit cliques).  This example runs
the library's adaptive 4-cycle detector and the MM-based k-clique detector
on synthetic graphs and compares them against their combinatorial
baselines.

Run with::

    python examples/cycle_and_clique_detection.py
"""

from __future__ import annotations

import time

from repro.api import QueryEngine
from repro.constants import OMEGA_BEST_KNOWN
from repro.core import (
    FOUR_CYCLE_QUERY,
    clique_detect_bruteforce,
    clique_detect_mm,
    four_cycle_adaptive,
)
from repro.db import clique_instance, four_cycle_instance


def four_cycle_section() -> None:
    """Engine strategies vs the adaptive detector on skewed 4-cycle data.

    The general-purpose strategies go through :class:`repro.api.QueryEngine`
    (one engine per instance: plans are cached, every ask runs on the
    unified operator VM); the adaptive degree-split detector is the
    specialized lowering of the same execution layer.
    """
    print("=== 4-cycle detection (heavily skewed bipartite-ish data) ===")
    print(f"{'N':>8s} {'answer':>7s} {'generic_join':>13s} {'omega':>10s} {'adaptive':>10s}")
    for num_edges in (500, 1_000, 2_000, 4_000):
        database = four_cycle_instance(
            num_edges, domain_size=max(40, num_edges // 25), skew="heavy", seed=num_edges
        )
        engine = QueryEngine(database, omega=OMEGA_BEST_KNOWN)
        generic = engine.ask(FOUR_CYCLE_QUERY, strategy="generic_join")
        omega_result = engine.ask(FOUR_CYCLE_QUERY, strategy="omega")
        report = four_cycle_adaptive(database, OMEGA_BEST_KNOWN)
        if len({generic.answer, omega_result.answer, report.answer}) != 1:
            raise AssertionError("4-cycle strategies disagree")
        print(
            f"{database.size:>8d} {str(report.answer):>7s} "
            f"{generic.seconds * 1e3:>13.2f} {omega_result.execute_seconds * 1e3:>10.2f} "
            f"{report.seconds * 1e3:>10.2f}"
        )
    print()


def clique_section() -> None:
    print("=== k-clique detection (random graph with a planted clique) ===")
    print(f"{'k':>3s} {'edges':>7s} {'answer':>7s} {'bruteforce':>12s} {'mm-based':>10s}")
    for k in (4, 5, 6):
        _, database = clique_instance(
            k, num_edges=600, domain_size=60, plant_clique=True, seed=k
        )
        edges = list(database["E0"].rows)

        start = time.perf_counter()
        expected = clique_detect_bruteforce(edges, k)
        brute_time = time.perf_counter() - start

        report = clique_detect_mm(edges, k, OMEGA_BEST_KNOWN)
        if report.answer != expected:
            raise AssertionError("clique strategies disagree")
        print(
            f"{k:>3d} {len(edges):>7d} {str(report.answer):>7s} "
            f"{brute_time * 1e3:>12.2f} {report.seconds * 1e3:>10.2f}"
        )
    print()
    print(
        "The MM-based detector follows the three-way split of Lemma C.8: the\n"
        "pattern vertices are divided into groups of sizes ⌈k/3⌉, ⌈(k-1)/3⌉,\n"
        "⌊k/3⌋ and the middle group is eliminated by one Boolean product."
    )


def main() -> None:
    four_cycle_section()
    clique_section()


if __name__ == "__main__":
    main()
