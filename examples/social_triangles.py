"""Scenario: triangle detection in a skewed "social network" graph.

Social graphs have hubs: a few accounts with very high degree.  This is the
degree configuration where the paper's Figure-1 algorithm shines — the
heavy part is small but dense, so a Boolean matrix multiplication over the
hubs beats enumerating their neighbour pairs.

The script sweeps the input size, runs four strategies on each instance and
prints a table of running times, so the crossover behaviour is visible
directly.

Run with::

    python examples/social_triangles.py
"""

from __future__ import annotations

import time

from repro.constants import OMEGA_BEST_KNOWN
from repro.core import (
    triangle_figure1,
    triangle_generic_join,
    triangle_matrix_only,
    triangle_naive,
)
from repro.db import triangle_instance


def run_once(num_edges: int, seed: int) -> dict:
    """Time each triangle strategy on one hub-skewed instance."""
    database = triangle_instance(
        num_edges=num_edges,
        domain_size=max(50, num_edges // 20),
        skew="heavy",
        plant_triangle=False,
        seed=seed,
    )
    timings = {}
    answers = {}

    start = time.perf_counter()
    answers["naive"] = triangle_naive(database)
    timings["naive"] = time.perf_counter() - start

    start = time.perf_counter()
    answers["generic_join"] = triangle_generic_join(database)
    timings["generic_join"] = time.perf_counter() - start

    start = time.perf_counter()
    answers["matrix_only"] = triangle_matrix_only(database)
    timings["matrix_only"] = time.perf_counter() - start

    report = triangle_figure1(database, OMEGA_BEST_KNOWN)
    answers["figure1"] = report.answer
    timings["figure1"] = report.seconds

    if len(set(answers.values())) != 1:
        raise AssertionError(f"strategies disagree: {answers}")
    timings["answer"] = answers["figure1"]
    timings["N"] = database.size
    return timings


def main() -> None:
    sizes = [500, 1_000, 2_000, 4_000, 8_000]
    strategies = ["naive", "generic_join", "matrix_only", "figure1"]
    header = f"{'N':>8s} {'answer':>7s} " + " ".join(f"{s:>14s}" for s in strategies)
    print("Triangle detection on hub-skewed graphs (times in ms)")
    print(header)
    print("-" * len(header))
    for size in sizes:
        result = run_once(size, seed=size)
        row = f"{result['N']:>8d} {str(result['answer']):>7s} "
        row += " ".join(f"{result[s] * 1e3:>14.2f}" for s in strategies)
        print(row)
    print()
    print(
        "The Figure-1 algorithm tracks the best of the combinatorial and\n"
        "matrix-multiplication strategies because it partitions the data by\n"
        "degree and uses MM only on the heavy part."
    )


if __name__ == "__main__":
    main()
