"""Table 1: best prior exponent vs. the exponent our framework computes.

For every query class of Table 1 (instantiated at small k) the benchmark
recomputes the ω-submodular width mechanically (LP + branch and bound) and
compares it against the paper's closed-form entry for both the prior bound
and the new bound.  The regenerated table is written to
``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import pytest

from repro.constants import OMEGA_BEST_KNOWN
from repro.hypergraph import clique, five_clique, four_clique, pyramid, three_pyramid, triangle
from repro.polymatroid import (
    five_clique_witness,
    four_clique_witness,
    k_clique_witness,
    three_pyramid_witness,
    triangle_witness,
)
from repro.width import (
    omega_submodular_width,
    omega_subw_clique,
    omega_subw_pyramid_upper_bound,
    omega_subw_three_pyramid,
    omega_subw_triangle,
    prior_clique,
    prior_pyramid,
    prior_triangle,
)

from benchmarks._reporting import write_table

OMEGA = OMEGA_BEST_KNOWN

TABLE1_ROWS = []


CASES = [
    (
        "triangle",
        triangle(),
        lambda: [triangle_witness(OMEGA)],
        prior_triangle(OMEGA),
        omega_subw_triangle(OMEGA),
    ),
    (
        "4-clique",
        four_clique(),
        lambda: [four_clique_witness()],
        prior_clique(4, OMEGA),
        omega_subw_clique(4, OMEGA),
    ),
    (
        "5-clique",
        five_clique(),
        lambda: [five_clique_witness()],
        prior_clique(5, OMEGA),
        omega_subw_clique(5, OMEGA),
    ),
    (
        "6-clique",
        clique(6),
        lambda: [k_clique_witness(6)],
        prior_clique(6, OMEGA),
        omega_subw_clique(6, OMEGA),
    ),
    (
        "3-pyramid",
        three_pyramid(),
        lambda: [three_pyramid_witness(OMEGA)],
        prior_pyramid(3),
        omega_subw_three_pyramid(OMEGA),
    ),
    (
        "4-pyramid",
        pyramid(4),
        lambda: [],
        prior_pyramid(4),
        omega_subw_pyramid_upper_bound(4, OMEGA),
    ),
]


@pytest.mark.parametrize("name,hypergraph,seeds,prior,paper", CASES, ids=[c[0] for c in CASES])
def test_table1_row(benchmark, name, hypergraph, seeds, prior, paper):
    result = benchmark.pedantic(
        lambda: omega_submodular_width(hypergraph, OMEGA, seeds=seeds()),
        rounds=1,
        iterations=1,
    )
    measured = result.value
    # Pyramid entries of Table 1 are upper bounds; everything else is exact.
    if name.endswith("pyramid") and name != "3-pyramid":
        assert measured <= paper + 1e-6
    else:
        assert measured == pytest.approx(paper, abs=1e-5)
    # The new exponent never exceeds the best prior exponent.
    assert measured <= prior + 1e-6
    TABLE1_ROWS.append((name, prior, paper, measured))
    write_table(
        "table1",
        ("query", "prior exponent", "paper ω-subw", "measured ω-subw"),
        sorted(TABLE1_ROWS),
    )
