"""Repeated-query throughput with the plan cache on vs. off.

A production engine sees the same query shapes over and over; the
:class:`repro.api.QueryEngine` plan cache memoizes ω-query plans keyed by
(canonical shape, ω, database fingerprint) so only the first ask of a shape
pays the planning cost (which enumerates elimination orders and is far more
expensive than executing on moderate data).  The benchmark asks the same
triangle and 4-cycle queries repeatedly — including isomorphic renamings,
which must also hit — with the cache enabled and disabled, and records the
throughput and the planning-time share in
``benchmarks/results/plan_cache.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.api import QueryEngine
from repro.constants import OMEGA_BEST_KNOWN
from repro.db import four_cycle_instance, parse_query, triangle_instance

from benchmarks._reporting import write_table

OMEGA = OMEGA_BEST_KNOWN
#: ``REPRO_BENCH_TINY=1`` shrinks inputs so CI can smoke-run the harness.
TINY = os.environ.get("REPRO_BENCH_TINY", "").strip().lower() in ("1", "true", "yes")
REPEATS = 5 if TINY else 25
TRIANGLE_EDGES = 120 if TINY else 1_200
CYCLE_EDGES = 80 if TINY else 700
ROWS = []

WORKLOADS = {
    "triangle": (
        [
            parse_query("Q() :- R(X, Y), S(Y, Z), T(X, Z)"),
            # An isomorphic renaming: must hit the same cache entry.
            parse_query("Q() :- R(A, B), S(B, C), T(A, C)"),
        ],
        lambda: triangle_instance(TRIANGLE_EDGES, domain_size=70, seed=11),
    ),
    "4cycle": (
        [
            parse_query("Q() :- R(X, Y), S(Y, Z), T(Z, W), U(W, X)"),
            parse_query("Q() :- R(P, Q'), S(Q', V), T(V, W), U(W, P)"),
        ],
        lambda: four_cycle_instance(CYCLE_EDGES, domain_size=50, seed=12),
    ),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=sorted(WORKLOADS))
@pytest.mark.parametrize("cache", ["on", "off"])
def test_repeated_query_throughput(benchmark, workload, cache):
    queries, factory = WORKLOADS[workload]
    database = factory()
    engine = QueryEngine(
        database, omega=OMEGA, plan_cache_size=(64 if cache == "on" else 0)
    )

    def run():
        results = []
        for _ in range(REPEATS):
            for query in queries:
                results.append(engine.ask(query, strategy="omega"))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    answers = {result.answer for result in results}
    assert len(answers) == 1  # isomorphic queries on the same data must agree
    stats = engine.cache_info()
    if cache == "on":
        # Only the very first ask of the shape may plan.
        assert stats.hits == len(results) - 1
        assert sum(1 for r in results if not r.cache_hit) == 1
    else:
        assert stats.hits == 0
    plan_seconds = sum(result.plan_seconds for result in results)
    total_seconds = float(benchmark.stats.stats.mean)
    ROWS.append(
        (
            workload,
            cache,
            len(results),
            total_seconds,
            len(results) / total_seconds if total_seconds else 0.0,
            plan_seconds,
            stats.hits,
        )
    )
    write_table(
        "plan_cache",
        ("workload", "cache", "asks", "seconds", "asks_per_s", "plan_seconds", "hits"),
        sorted(ROWS),
    )
