"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

# Every engine the suite builds statically verifies every program it
# lowers (see repro.analysis.verify): the whole test corpus doubles as
# the verifier's plan corpus, and an unsound rewrite fails loudly here
# before it can corrupt a result.  Explicit QueryEngine(verify_plans=...)
# arguments in individual tests still win over this default.
os.environ.setdefault("REPRO_VERIFY_PLANS", "optimized")

from repro.constants import OMEGA_BEST_KNOWN
from repro.polymatroid import SetFunction, entropy_from_distribution

# Keep hypothesis example counts modest: several properties run LPs or joins.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def omega() -> float:
    """The ω value used by most numeric tests (the best known bound)."""
    return OMEGA_BEST_KNOWN


def random_entropic_polymatroid(
    variables: list[str], seed: int, num_outcomes: int = 12, domain: int = 3
) -> SetFunction:
    """A random polymatroid obtained as the entropy of a random distribution."""
    rng = random.Random(seed)
    outcomes = {}
    for _ in range(num_outcomes):
        outcome = tuple(rng.randrange(domain) for _ in variables)
        outcomes[outcome] = rng.random() + 0.05
    return entropy_from_distribution(variables, outcomes)
