"""Core: ω-query plans, planner, executor and the per-class algorithms."""

from .clique import (
    CliqueReport,
    clique_detect_bruteforce,
    clique_detect_mm,
    enumerate_cliques,
)
from .cycle import (
    FOUR_CYCLE_QUERY,
    FourCycleReport,
    four_cycle_adaptive,
    four_cycle_combinatorial,
    four_cycle_detect,
    four_cycle_generic_join,
    four_cycle_matrix_only,
)
from .engine import STRATEGIES, EngineReport, answer_boolean_query, compare_strategies
from .executor import ExecutionResult, PlanExecutor, StepTrace
from .plan import OmegaQueryPlan, PlanStep, StepMethod, all_for_loop_plan
from .planner import (
    PlannedQuery,
    PlannedStep,
    candidate_orders,
    plan_for_order,
    plan_query,
)
from .triangle import (
    TRIANGLE_QUERY,
    TriangleReport,
    triangle_detect,
    triangle_figure1,
    triangle_generic_join,
    triangle_matrix_only,
    triangle_naive,
)

__all__ = [
    "CliqueReport",
    "EngineReport",
    "ExecutionResult",
    "FOUR_CYCLE_QUERY",
    "FourCycleReport",
    "OmegaQueryPlan",
    "PlanExecutor",
    "PlanStep",
    "PlannedQuery",
    "PlannedStep",
    "STRATEGIES",
    "StepMethod",
    "StepTrace",
    "TRIANGLE_QUERY",
    "TriangleReport",
    "all_for_loop_plan",
    "answer_boolean_query",
    "candidate_orders",
    "clique_detect_bruteforce",
    "clique_detect_mm",
    "compare_strategies",
    "enumerate_cliques",
    "four_cycle_adaptive",
    "four_cycle_combinatorial",
    "four_cycle_detect",
    "four_cycle_generic_join",
    "four_cycle_matrix_only",
    "plan_for_order",
    "plan_query",
    "triangle_detect",
    "triangle_figure1",
    "triangle_generic_join",
    "triangle_matrix_only",
    "triangle_naive",
]
