"""Ranked (any-k) enumeration: the sorted-order frontier-heap cursor.

Pins the ranked select pipeline end to end:

* differential — a sorted ``limit=k`` select equals the brute-force
  sorted output's first ``k`` rows across strategies × storage backends
  × parallelism × limit boundaries (0, 1, mid, |output|, > |output|);
* the heap invariant — ranked batches arrive globally nondecreasing
  under :func:`~repro.db.ordering.row_order_key`, the cursor emits
  exactly ``min(k, |output|)`` tuples, and the trace carries the
  frontier-heap accounting;
* mid-enumeration cancellation maps to the API error and leaves the
  engine's caches unpoisoned;
* :meth:`ResultSet.rewind(restart=True) <repro.api.results.ResultSet.rewind>`
  re-executes cheaply: the calibrated reducer relations come back from
  the result cache (their traces show ``cache_hit``);
* the storage-layer order primitives (``sorted_order``,
  ``ordered_distinct_values``, ``ordered_rows``) agree with the keyed
  reference order on both backends, including mixed-type and NaN
  columns;
* the dispatcher's ranked-vs-materialize routing decision.
"""

from __future__ import annotations

import math

import pytest

from repro.api import QueryEngine
from repro.api.errors import QueryCancelledError
from repro.db import Database, Relation, available_backends, parse_query, random_database
from repro.db.ordering import row_order_key, value_order_key
from repro.exec.dispatch import KernelDispatcher
from repro.exec.vm import CancellationToken

from test_output_queries import brute_force_outputs
from test_streaming_enumeration import CHAIN, SHAPES, _chain_database, _strategies

BACKENDS = available_backends()


def _norm(row):
    """NaN-tolerant row identity (NaN != NaN breaks plain equality)."""
    return tuple(
        "NaN" if isinstance(v, float) and math.isnan(v) else v for v in row
    )


# ----------------------------------------------------------------------
# Differential: ranked == brute-force sorted prefix, everywhere
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("seed", range(2))
def test_sorted_limits_equal_brute_force_prefix_everywhere(shape, seed):
    query = parse_query(SHAPES[shape])
    for backend in BACKENDS:
        database = random_database(
            query, 22, domain_size=5, seed=seed, plant_witness=True,
            backend=backend,
        )
        expected = sorted(brute_force_outputs(query, database), key=row_order_key)
        total = len(expected)
        for parallelism in (1, 4):
            with QueryEngine(database, parallelism=parallelism) as engine:
                for strategy in _strategies(query):
                    for k in (0, 1, min(3, total), total, total + 7):
                        label = f"{shape}/{backend}/{strategy}/p{parallelism}/k={k}"
                        rows = engine.select(
                            query, strategy=strategy, limit=k, order="sorted"
                        ).to_rows()
                        assert rows == expected[:k], label


# ----------------------------------------------------------------------
# The heap invariant: batches pop in global order
# ----------------------------------------------------------------------
def test_ranked_batches_are_globally_nondecreasing():
    database = _chain_database(600)
    engine = QueryEngine(database)
    total = engine.count(CHAIN).row_count
    k = 200
    assert total > k  # the cursor stops well before the output ends
    result_set = engine.select(CHAIN, limit=k, order="sorted")
    batches = list(result_set.batches())
    rows = [row for batch in batches for row in batch]
    assert len(rows) == k
    keys = [row_order_key(row) for row in rows]
    assert keys == sorted(keys)  # nondecreasing across batch boundaries
    stream = result_set.result.stream
    assert stream is not None and stream.order == "ranked"
    assert stream.emitted == k
    ops = [
        op for op in result_set.result.execution.operators
        if op.kind == "enumerate"
    ]
    assert len(ops) == 1
    # Every emitted tuple is a full-depth pop; interior pops add more.
    assert ops[0].heap_pops >= k
    assert ops[0].heap_peak >= 1
    assert ops[0].rows_out == k


def test_ranked_emits_min_of_limit_and_output():
    database = _chain_database(300)
    engine = QueryEngine(database)
    total = engine.count(CHAIN).row_count
    full = engine.select(CHAIN, order="sorted").to_rows()
    assert len(full) == total
    over = engine.select(CHAIN, limit=total + 999, order="sorted")
    # Over the ranked cap this routes to materialize; either way the
    # contract is the full sorted output, no more.
    assert over.to_rows() == full


# ----------------------------------------------------------------------
# Cancellation mid-ranked-enumeration
# ----------------------------------------------------------------------
def test_ranked_cancellation_mid_enumeration_and_cache_stays_clean():
    database = _chain_database(2000)
    engine = QueryEngine(database)
    token = CancellationToken()
    result_set = engine.select(CHAIN, limit=30_000, order="sorted", token=token)
    first = result_set.fetch(8)
    assert len(first) == 8
    stream = result_set.result.stream
    assert stream is not None and stream.order == "ranked"
    assert not stream.exhausted
    token.cancel()
    with pytest.raises(QueryCancelledError):
        result_set.fetch(10_000_000)
    # A fresh run over the (warm) caches is complete and correct.
    total = engine.count(CHAIN).row_count
    fresh = engine.select(CHAIN, limit=16, order="sorted").to_rows()
    assert len(fresh) == 16
    assert total > 16
    assert fresh == engine.select(CHAIN, order="sorted").to_rows()[:16]


# ----------------------------------------------------------------------
# Rewind: cheap re-execution off the result cache
# ----------------------------------------------------------------------
def test_rewind_restart_reuses_calibrated_children():
    database = _chain_database(600)
    engine = QueryEngine(database)
    result_set = engine.select(CHAIN, limit=6, order="sorted")
    first_rows = result_set.to_rows()
    assert len(first_rows) == 6
    first_ops = result_set.result.execution.operators
    assert not any(op.cache_hit for op in first_ops)  # cold first run
    result_set.rewind(restart=True)
    assert not result_set.executed  # the run really was discarded
    assert result_set.to_rows() == first_rows
    second_ops = result_set.result.execution.operators
    # The calibrated reducer relations came back from the result cache;
    # only the enumeration itself (cache-exempt) re-ran.
    hits = [op for op in second_ops if op.cache_hit]
    assert hits, "restarted run re-executed the reducer from scratch"
    assert all(op.kind != "enumerate" for op in hits)

    # Plain rewind only resets the fetch cursor — no re-execution.
    result_set.rewind()
    assert result_set.executed
    assert result_set.fetch(3) == first_rows[:3]


# ----------------------------------------------------------------------
# Storage-layer order primitives
# ----------------------------------------------------------------------
MIXED_ROWS = [
    (2, "b"),
    (1, "a"),
    ("x", 3.5),
    (True, "a"),
    (float("nan"), 0),
    (1.5, "z"),
]


@pytest.mark.parametrize("backend", BACKENDS)
def test_sorted_order_matches_keyed_reference(backend):
    relation = Relation(("A", "B"), MIXED_ROWS, backend=backend)
    ordered = relation.ordered_rows()
    reference = sorted(relation.rows, key=row_order_key)
    assert [_norm(r) for r in ordered] == [_norm(r) for r in reference]
    # sorted_order indexes the same permutation row_slice reads.
    order = list(relation.sorted_order(relation.schema))
    assert sorted(order) == list(range(len(relation)))
    via_indices = [
        next(iter(relation.row_slice(i, i + 1).rows)) for i in order
    ]
    assert [_norm(r) for r in via_indices] == [_norm(r) for r in reference]


@pytest.mark.parametrize("backend", BACKENDS)
def test_ordered_rows_limit_is_a_prefix(backend):
    relation = Relation(("A", "B"), MIXED_ROWS, backend=backend)
    full = relation.ordered_rows()
    for k in (0, 1, 3, len(full), len(full) + 2):
        assert [_norm(r) for r in relation.ordered_rows(k)] == [
            _norm(r) for r in full[:k]
        ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_ordered_distinct_values_mixed_types_and_nan(backend):
    relation = Relation(("A", "B"), MIXED_ROWS, backend=backend)
    values = relation.ordered_distinct_values("A")
    reference = sorted(
        {row[0] for row in relation.rows}, key=value_order_key
    )
    assert [_norm((v,)) for v in values] == [_norm((v,)) for v in reference]
    # Type-aware order: floats first (NaN bucketed after every finite
    # float), then ints (bools rank with them), then strings.
    assert values[0] == 1.5
    assert isinstance(values[1], float) and math.isnan(values[1])
    assert list(values[2:]) == [1, 2, "x"]


def test_order_primitives_agree_across_backends():
    rows = [(i % 7, (i * 3) % 11) for i in range(40)]
    by_backend = {
        backend: Relation(("A", "B"), rows, backend=backend)
        for backend in BACKENDS
    }
    orderings = {b: r.ordered_rows() for b, r in by_backend.items()}
    distinct = {b: r.ordered_distinct_values("B") for b, r in by_backend.items()}
    reference_rows = next(iter(orderings.values()))
    reference_vals = next(iter(distinct.values()))
    for backend in BACKENDS:
        assert list(orderings[backend]) == list(reference_rows), backend
        assert list(distinct[backend]) == list(reference_vals), backend


# ----------------------------------------------------------------------
# Dispatcher routing
# ----------------------------------------------------------------------
def test_dispatcher_ranked_enumeration_decision():
    dispatcher = KernelDispatcher()
    cap = dispatcher.ranked_limit_cap
    # Ranked needs sorted order and a bounded limit within the cap.
    assert dispatcher.ranked_enumeration(16, "sorted")
    assert dispatcher.ranked_enumeration(0, "sorted")  # trivially cheap
    assert dispatcher.ranked_enumeration(cap, "sorted")
    assert not dispatcher.ranked_enumeration(cap + 1, "sorted")
    assert not dispatcher.ranked_enumeration(None, "sorted")
    assert not dispatcher.ranked_enumeration(16, "stream")
    # A known output no larger than the limit favors one bulk sort.
    assert not dispatcher.ranked_enumeration(16, "sorted", output_hint=10)
    assert not dispatcher.ranked_enumeration(16, "sorted", output_hint=16)
    assert dispatcher.ranked_enumeration(16, "sorted", output_hint=1000)
    assert dispatcher.ranked_enumeration(16, "sorted", output_hint=0)
    # The cap is configurable.
    tight = KernelDispatcher(ranked_limit_cap=4)
    assert tight.ranked_enumeration(4, "sorted")
    assert not tight.ranked_enumeration(5, "sorted")
