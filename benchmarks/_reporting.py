"""Plain-text artefact writing shared by the benchmark modules.

Each benchmark regenerates one table or figure of the paper; besides the
timings collected by pytest-benchmark, the regenerated rows are written to
``benchmarks/results/*.txt`` so that ``EXPERIMENTS.md`` can be refreshed by
re-running the harness.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_table(name: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Write a plain-text table artefact under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    widths = [max(len(str(h)), 12) for h in header]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                (f"{value:.4f}" if isinstance(value, float) else str(value)).ljust(w)
                for value, w in zip(row, widths)
            )
        )
    (RESULTS_DIR / f"{name}.txt").write_text("\n".join(lines) + "\n")
