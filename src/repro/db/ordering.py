"""The deterministic value-order contract shared across the stack.

``select(order="sorted")`` promises distinct output tuples in a total
order that depends only on the tuples themselves — identical across
storage backends, strategies and ``parallelism``.  That contract is used
in three places, so it lives here at the bottom of the dependency graph:

* :mod:`repro.api.results` sorts materialized outputs with
  :func:`_ordered_rows` (which re-exports from here);
* :class:`~repro.db.backends.ColumnarBackend` builds cached per-column
  *value ranks* (dictionary codes re-ranked by :func:`value_order_key`)
  so relations can hand out value-sorted row orders without decoding;
* the VM's :class:`~repro.exec.vm.RankedEnumerationStream` keys its
  frontier heap with :func:`value_order_key` components, which is what
  makes the any-k enumeration byte-identical to the sorted contract.

The order is lexicographic over per-value components: values compare
within their type first (type name, then value), bool folds into int the
way Python's own ordering treats it, NaN canonicalizes into a bucket
after every real float, and same-type values without a natural ``<``
fall back to their ``repr``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

Row = Tuple[object, ...]


class _Ordered:
    """A comparison wrapper giving any value a total order.

    Natural ``<`` is used when the values support it; values of the same
    type that do not (complex numbers, arbitrary objects) fall back to
    comparing their ``repr`` — deterministic, which is all the result
    order promises.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Ordered) and self.value == other.value

    def __lt__(self, other: "_Ordered") -> bool:
        try:
            return self.value < other.value  # type: ignore[operator]
        except TypeError:
            return repr(self.value) < repr(other.value)

    def __hash__(self) -> int:  # pragma: no cover - not used as a dict key
        return hash(self.value)


def value_order_key(value: object) -> Tuple[str, _Ordered]:
    """The single-value component of :func:`row_order_key`.

    Comparing rows by these components one position at a time is exactly
    the tuple comparison of their full :func:`row_order_key` keys — the
    property the ranked enumeration's level-by-level heap relies on.
    """
    kind = type(value)
    if kind is bool:
        return ("int", _Ordered(value))
    if kind is float:
        # NaN is not comparable to anything (not even itself), which
        # would silently break the total order; canonicalize it to a
        # bucket sorting after every real float.  Distinct values that
        # differ only in NaN identity tie — their relative order is
        # unspecified (they are indistinguishable by value).
        if value != value:
            return ("float", _Ordered((1, 0.0)))
        return ("float", _Ordered((0, value)))
    return (kind.__name__, _Ordered(value))


def row_order_key(row: Sequence[object]) -> Tuple:
    """A total-order sort key over heterogeneous value tuples.

    The fallback comparator behind :func:`_ordered_rows`, used when
    natural tuple comparison raises: values are compared within their
    type first (type name, then value), so mixed-type columns — ints next
    to strings — sort deterministically instead of raising ``TypeError``;
    same-type values without a natural order fall back to their ``repr``.
    Booleans are folded into ints the way Python's own ordering treats
    them.
    """
    return tuple(value_order_key(value) for value in row)


#: Types whose natural ordering matches :func:`row_order_key` when a
#: column is type-uniform (bool folds into int in both orders).
_NATURAL_KINDS = (int, float, str)


def _uniform_natural_order(rows) -> bool:
    """Whether every column holds one natural-ordered type throughout.

    When true, plain tuple comparison is total *and* ranks rows exactly
    like :func:`row_order_key` (equal type names drop out of every
    comparison), so the cheap natural sort may be used.  The decision is a
    function of the value types alone — never of iteration order or of
    which pairs a particular sort happens to compare — keeping the chosen
    order deterministic across backends, strategies and limits.
    """
    kinds: Optional[List[type]] = None
    for row in rows:
        if kinds is None:
            kinds = [int if type(v) is bool else type(v) for v in row]
            if any(kind not in _NATURAL_KINDS for kind in kinds):
                return False
            if any(value != value for value in row):  # NaN: no total order
                return False
        else:
            for value, kind in zip(row, kinds):
                value_kind = type(value)
                if value_kind is bool:
                    value_kind = int
                if value_kind is not kind:
                    return False
                if value != value:  # NaN anywhere forces the keyed sort
                    return False
    return True


def _ordered_rows(rows, limit: Optional[int]) -> List[Row]:
    """The deterministic order of an output-tuple set (limited prefix).

    Natural tuple comparison is ~20x cheaper than the keyed sort (no
    per-value wrapper allocation), so it is used whenever a type-uniformity
    scan proves it equivalent to :func:`row_order_key`; mixed-type or
    unorderable columns take the keyed sort.  The comparator choice
    depends only on the tuple set, so the same set orders the same way
    everywhere, and the bounded ``heapq.nsmallest`` path (O(n log k))
    returns exactly the first-``k`` prefix of the corresponding full sort.
    """
    if _uniform_natural_order(rows):
        if limit is not None:
            return heapq.nsmallest(limit, rows)
        return sorted(rows)
    if limit is not None:
        return heapq.nsmallest(limit, rows, key=row_order_key)
    return sorted(rows, key=row_order_key)
