"""Static verification of lowered programs: reject unsound IR before it runs.

Nine PRs of engine work rest on invariants that the IR's construction-time
checks cannot see because they are *program-level* properties: a structural
key must never collide across rename-incompatible subtrees (the result
cache would serve one query's rows to another), a streaming or ranked
:class:`~repro.exec.ir.Enumerate` sink must sit on a fully calibrated
join tree (otherwise dangling tuples leak into the output), morsel specs
must keep the probe side at child 0 (the parallel VM partitions it), and
every operator's structural key must agree with its scan closure (the
cache version key is derived from it).  :func:`verify_program` checks all
of them statically over any :class:`~repro.exec.ir.Program` — lowered or
optimized — and returns structured :class:`Violation` records;
:func:`assert_verified` raises
:class:`~repro.api.errors.PlanVerificationError` instead.

The pipeline is a flat list of *passes* (:data:`VERIFIER_PASSES`), each a
function ``(program, context) -> iterable of Violation``.  Adding a check
means writing one function and appending it to the list — see
``src/repro/analysis/README.md``.

The engine runs this automatically when constructed with
``verify_plans='lowered'`` or ``'optimized'`` (default from the
``REPRO_VERIFY_PLANS`` environment variable — the test suite turns it on
for every engine via ``tests/conftest.py``), and the front door exposes it
as ``EXPLAIN VERIFY <statement>`` and ``repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..api.errors import PlanVerificationError
from ..exec.ir import (
    ENUMERATION_ORDERS,
    All_,
    Antijoin,
    Any_,
    Count,
    Distinct,
    Enumerate,
    GroupedMatMul,
    Join,
    MultiSemijoin,
    NonEmpty,
    Operator,
    Program,
    Project,
    Scan,
    Semijoin,
    rename_operator,
)

__all__ = [
    "PlanVerificationError",
    "VERIFIER_PASSES",
    "Violation",
    "assert_verified",
    "verify_program",
]

#: Verification stages an engine may request (``off`` disables).
VERIFY_STAGES = ("off", "lowered", "optimized")


@dataclass(frozen=True)
class Violation:
    """One verifier finding: the rule that fired, where, and why."""

    rule: str
    message: str
    #: The operator's 1-based id in ``program.describe()`` (``None`` for
    #: whole-program findings).
    node_id: Optional[int] = None

    def describe(self) -> str:
        where = f" at #{self.node_id}" if self.node_id is not None else ""
        return f"[{self.rule}]{where} {self.message}"


class _Context:
    """Shared per-program state the passes consult (built once)."""

    def __init__(
        self,
        program: Program,
        verb: Optional[str],
        database,
    ) -> None:
        self.program = program
        self.verb = verb
        self.database = database
        self.nodes = program.nodes()
        self.ids = program.node_ids()
        self.consumers: Dict[Operator, List[Operator]] = {n: [] for n in self.nodes}
        for node in self.nodes:
            for child in node.children:
                self.consumers[child].append(node)

    def at(self, node: Operator, rule: str, message: str) -> Violation:
        return Violation(
            rule=rule,
            message=f"{node.label()}: {message}",
            node_id=self.ids.get(node),
        )


# ----------------------------------------------------------------------
# Pass 1: DAG shape — acyclic, single sink, sinks only at the root
# ----------------------------------------------------------------------
def check_dag_shape(program: Program, ctx: _Context) -> Iterator[Violation]:
    """The program must be an acyclic DAG with its one sink at the root."""
    # Acyclicity by identity: frozen nodes cannot normally form a cycle,
    # but a hand-mutated DAG would hang the VM's topological walk.
    visiting: set = set()
    finished: set = set()
    cycle = False
    stack: List[Tuple[Operator, int]] = [(program.root, 0)]
    visiting.add(id(program.root))
    while stack and not cycle:
        node, index = stack.pop()
        if index < len(node.children):
            stack.append((node, index + 1))
            child = node.children[index]
            if id(child) in visiting:
                cycle = True
                break
            if id(child) not in finished:
                visiting.add(id(child))
                stack.append((child, 0))
        else:
            visiting.discard(id(node))
            finished.add(id(node))
    if cycle:
        yield Violation("dag-shape", "operator DAG contains a cycle")
        return
    root = program.root
    for node in ctx.nodes:
        consumers = ctx.consumers[node]
        if node is not root and not consumers:
            # Unreachable nodes cannot appear in a DAG walked from the
            # root; a second sink would mean nodes() missed work.
            yield ctx.at(node, "dag-shape", "unreachable second sink")
        if isinstance(node, (Count, Enumerate)) and node is not root:
            yield ctx.at(
                node,
                "dag-shape",
                "output sink must be the program root "
                "(the VM exempts sinks from the result cache and attaches "
                "result sets only at the root)",
            )
        if node.boolean:
            for consumer in consumers:
                if not isinstance(consumer, (Any_, All_)):
                    yield ctx.at(
                        node,
                        "dag-shape",
                        f"Boolean operator consumed by non-Boolean "
                        f"{consumer.label()}",
                    )


# ----------------------------------------------------------------------
# Pass 2: schema well-formedness / inference consistency
# ----------------------------------------------------------------------
def check_schemas(program: Program, ctx: _Context) -> Iterator[Violation]:
    """Re-run every operator's schema inference and compare the result.

    A frozen node *should* be internally consistent, but rewrite passes
    rebuild nodes wholesale and ``object.__setattr__`` can bypass the
    dataclass guards — re-deriving from the children catches a node whose
    declared ``schema``/``skey`` drifted from what its inputs produce.
    """
    for node in ctx.nodes:
        declared = (node.schema, node.children, node.skey)
        try:
            node.validate(program)
        except (TypeError, ValueError) as error:
            yield ctx.at(node, "schema", str(error))
            continue
        rederived = (node.schema, node.children, node.skey)
        if declared != rederived:
            yield ctx.at(
                node,
                "schema",
                f"declared schema/skey {declared[0]} disagrees with the "
                f"re-derived {rederived[0]} (inference inconsistency)",
            )
        if len(set(node.schema)) != len(node.schema):
            yield ctx.at(node, "schema", f"duplicate output columns {node.schema}")
    if ctx.database is not None:
        for node in ctx.nodes:
            if not isinstance(node, Scan):
                continue
            if node.relation not in ctx.database:
                yield ctx.at(
                    node, "schema", f"scans unknown relation {node.relation!r}"
                )
                continue
            arity = len(ctx.database[node.relation].schema)
            if arity != len(node.schema):
                yield ctx.at(
                    node,
                    "schema",
                    f"scan arity {len(node.schema)} does not match relation "
                    f"{node.relation!r} arity {arity}",
                )


# ----------------------------------------------------------------------
# Pass 3: structural-key soundness (the cross-query cache contract)
# ----------------------------------------------------------------------
def _canonical(node: Operator) -> Operator:
    """The subtree with variables renamed into a canonical sequence.

    Variables are numbered by first appearance in a deterministic
    topological walk, and :class:`Distinct` collapses to its
    :class:`Project` base (they share a structural key by design), so two
    subtrees are rename-compatible exactly when their canonical forms are
    *equal* — an independent witness that never consults ``skey``.
    """
    sub = Program(node)
    mapping: Dict[str, str] = {}
    for member in sub.nodes():
        for variable in member.schema:
            if variable not in mapping:
                mapping[variable] = f"_v{len(mapping)}"
    renamed = rename_operator(node, mapping, {})

    def normalize(member: Operator, memo: Dict[Operator, Operator]) -> Operator:
        if member in memo:
            return memo[member]
        children = tuple(normalize(child, memo) for child in member.children)
        if isinstance(member, Distinct):
            rebuilt: Operator = Project(children[0], member.variables_out)
        elif children == member.children:
            rebuilt = member
        else:
            from ..exec.optimize import _rebuild

            rebuilt = _rebuild(member, children)
        memo[member] = rebuilt
        return rebuilt

    return normalize(renamed, {})


def check_skey_soundness(program: Program, ctx: _Context) -> Iterator[Violation]:
    """Structurally equal keys must witness rename-compatible subtrees.

    The VM's cross-query result cache serves any operator whose
    ``(skey, scan fingerprint)`` matches a stored entry, renaming the
    cached rows positionally — sound only if equal keys imply subtrees
    equal up to a variable renaming.  This is the PR 3 binding-collision
    bug class; the check constructs the rename witness independently of
    the key derivation, so an under-discriminating ``skey`` encoding is
    caught before the cache ever sees it.
    """
    groups: Dict[Tuple, List[Operator]] = {}
    for node in ctx.nodes:
        groups.setdefault(node.skey, []).append(node)
    for members in groups.values():
        if len(members) < 2:
            continue
        reference = _canonical(members[0])
        for other in members[1:]:
            if _canonical(other) != reference:
                yield ctx.at(
                    other,
                    "skey-collision",
                    f"shares a structural key with #{ctx.ids[members[0]]} "
                    f"({members[0].label()}) but the subtrees are not "
                    "rename-compatible; the result cache would alias them",
                )


# ----------------------------------------------------------------------
# Pass 4: the Enumerate contract
# ----------------------------------------------------------------------
def check_enumerate_contract(program: Program, ctx: _Context) -> Iterator[Violation]:
    """Streaming/ranked sinks need a calibrated tree and explicit parents.

    A streaming :class:`Enumerate` performs the Yannakakis top-down
    enumeration join lazily, which is only constant-delay — and only
    *correct* without a post-filter — when every participating relation
    has been full-reducer calibrated: the node's child and each frontier
    must be semijoin-reduced against its join-tree parent, and the
    ``parents`` edges must form a tree over the ``[child, *frontiers]``
    sequence.  Ranked (any-k) delivery additionally requires the explicit
    ``parents`` lowered from the join tree: the frontier-heap expansions
    recalibrate along exactly those edges, and an optimizer rewrite that
    drops them silently degrades to derived-parent guessing.
    """
    for node in ctx.nodes:
        if not isinstance(node, Enumerate):
            continue
        if node.order not in ENUMERATION_ORDERS:
            yield ctx.at(node, "enumerate", f"unknown order {node.order!r}")
            continue
        if node.limit is not None and node.limit < 0:
            yield ctx.at(node, "enumerate", f"negative limit {node.limit}")
        if not node.frontiers:
            continue
        sequence = (node.child,) + tuple(node.frontiers)
        if node.parents and len(node.parents) != len(node.frontiers):
            yield ctx.at(
                node,
                "enumerate",
                f"{len(node.parents)} parent edges for "
                f"{len(node.frontiers)} frontiers",
            )
            continue
        if node.order == "ranked" and not node.parents:
            yield ctx.at(
                node,
                "enumerate",
                "ranked enumeration over frontiers requires the explicit "
                "join-tree parents lowered with the plan (derived parents "
                "are a hand-built-program fallback, not an optimizer "
                "output)",
            )
        for index, parent in enumerate(node.parents):
            if not 0 <= parent <= index:
                yield ctx.at(
                    node,
                    "enumerate",
                    f"parent {parent} of frontier {index} does not precede "
                    "it in the sequence (not a tree)",
                )
        # Full-reducer calibration: the child and every frontier must be a
        # semijoin reduction, and each frontier's reducers must include
        # its join-tree parent (the downward calibration pass).  The
        # optimizer may have fused the chains into MultiSemijoin nodes.
        if not isinstance(node.child, (Semijoin, MultiSemijoin)):
            yield ctx.at(
                node,
                "enumerate",
                f"streaming sink over an uncalibrated root "
                f"{node.child.label()} (expected the upward semijoin "
                "reduction of the join tree)",
            )
        parents = node.parents or tuple(range(len(node.frontiers)))
        for index, frontier in enumerate(node.frontiers):
            if not isinstance(frontier, (Semijoin, MultiSemijoin)):
                yield ctx.at(
                    node,
                    "enumerate",
                    f"frontier {index} ({frontier.label()}) is not "
                    "semijoin-calibrated",
                )
                continue
            if not node.parents:
                continue
            parent_node = sequence[parents[index]]
            if parent_node not in frontier.children[1:]:
                yield ctx.at(
                    node,
                    "enumerate",
                    f"frontier {index} is not calibrated against its "
                    f"declared parent (sequence position {parents[index]}): "
                    "the downward full-reducer pass is missing",
                )


# ----------------------------------------------------------------------
# Pass 5: morsel safety
# ----------------------------------------------------------------------
#: The recombination contract per data-parallel operator class: the probe
#: child index and whether chunk outputs may overlap.  Rewrite passes
#: must keep fused operators on this table — the parallel VM partitions
#: the declared child and recombines per the dedup flag.
_MORSEL_TABLE = {
    Join: (0, False),
    Semijoin: (0, False),
    Antijoin: (0, False),
    MultiSemijoin: (0, False),
    GroupedMatMul: (0, True),
    Project: (0, True),
    Distinct: (0, True),
}


def check_morsel_safety(program: Program, ctx: _Context) -> Iterator[Violation]:
    """Every declared morsel spec must match the class recombination table.

    Fusion keeps the probe as child 0 and the recombination mode
    unchanged; an operator declaring a spec off this table (or pointing
    the probe at a reducer) would make the parallel VM partition the
    wrong operand and recombine unsoundly.
    """
    for node in ctx.nodes:
        spec = node.morsel_spec()
        if spec is None:
            continue
        expected = _MORSEL_TABLE.get(type(node))
        if expected is None:
            yield ctx.at(
                node,
                "morsel",
                "declares a morsel spec but is not a known data-parallel "
                "operator class",
            )
            continue
        if not 0 <= spec.child < len(node.children):
            yield ctx.at(
                node, "morsel", f"morsel probe index {spec.child} out of range"
            )
            continue
        if (spec.child, spec.dedup) != expected:
            yield ctx.at(
                node,
                "morsel",
                f"morsel spec (child={spec.child}, dedup={spec.dedup}) "
                f"deviates from the class contract "
                f"(child={expected[0]}, dedup={expected[1]})",
            )
        if isinstance(node, MultiSemijoin) and not node.reducers:
            yield ctx.at(node, "morsel", "fused semijoin with no reducers")


# ----------------------------------------------------------------------
# Pass 6: cache keys — skey must agree with the scan closure
# ----------------------------------------------------------------------
def _skey_relations(skey) -> frozenset:
    """Relation names recorded inside a structural key (``scan`` tags)."""
    found: set = set()
    stack = [skey]
    while stack:
        entry = stack.pop()
        if isinstance(entry, tuple):
            if len(entry) >= 2 and entry[0] == "scan" and isinstance(entry[1], str):
                found.add(entry[1])
            stack.extend(entry)
    return frozenset(found)


def check_cache_keys(program: Program, ctx: _Context) -> Iterator[Violation]:
    """The VM's version keys must cover exactly the relations a node reads.

    A cached entry is keyed ``(skey, fingerprint of the scan closure)``:
    after a delta, only operators whose closure contains the mutated
    relation miss.  That is sound only if the structural key records the
    same relation set the DAG actually scans — a key that omits a scanned
    relation would survive a delta to it and serve stale rows.  Scans and
    sinks are cache-exempt, but their keys still seed their consumers'.
    """
    closures: Dict[Operator, frozenset] = {}
    for node in ctx.nodes:  # topological: children first
        closure = frozenset(
            name for child in node.children for name in closures[child]
        )
        if isinstance(node, Scan):
            closure |= {node.relation}
        closures[node] = closure
        if not closure:
            yield ctx.at(
                node,
                "cache-key",
                "empty scan closure: the operator reads no relation, so "
                "no version key can invalidate it",
            )
            continue
        recorded = _skey_relations(node.skey)
        if recorded != closure:
            yield ctx.at(
                node,
                "cache-key",
                f"structural key records relations {sorted(recorded)} but "
                f"the DAG scans {sorted(closure)}; incremental deltas "
                "would miss or alias this node's cache entries",
            )


# ----------------------------------------------------------------------
# Pass 7: verb/sink agreement
# ----------------------------------------------------------------------
def check_verb_sink(program: Program, ctx: _Context) -> Iterator[Violation]:
    """The root's kind must match the verb the program was lowered for."""
    if ctx.verb is None:
        return
    root = program.root
    if ctx.verb == "exists" and not root.boolean:
        yield ctx.at(
            root, "verb-sink", "exists program must end in a Boolean root"
        )
    elif ctx.verb == "count" and not isinstance(root, Count):
        yield ctx.at(root, "verb-sink", "count program must end in a Count sink")
    elif ctx.verb == "select" and not isinstance(root, Enumerate):
        yield ctx.at(
            root, "verb-sink", "select program must end in an Enumerate sink"
        )
    if ctx.verb != "exists" and isinstance(root, NonEmpty):
        yield ctx.at(root, "verb-sink", f"Boolean root under verb {ctx.verb!r}")


#: The pipeline, in execution order.  Each pass is ``(program, context)
#: -> iterable of Violation``; append new checks here.
VERIFIER_PASSES: Tuple[Callable[[Program, _Context], Iterable[Violation]], ...] = (
    check_dag_shape,
    check_schemas,
    check_skey_soundness,
    check_enumerate_contract,
    check_morsel_safety,
    check_cache_keys,
    check_verb_sink,
)


def verify_program(
    program: Program,
    *,
    verb: Optional[str] = None,
    database=None,
) -> List[Violation]:
    """Run every verifier pass; returns the violations (empty = sound).

    ``verb`` enables the verb/sink-agreement pass; ``database`` enables
    scan-arity checks against the live schema.  Passes never raise — a
    defect is a :class:`Violation`, so one broken invariant does not mask
    the next.
    """
    ctx = _Context(program, verb, database)
    violations: List[Violation] = []
    for verifier_pass in VERIFIER_PASSES:
        violations.extend(verifier_pass(program, ctx))
    return violations


def assert_verified(
    program: Program,
    *,
    verb: Optional[str] = None,
    database=None,
    stage: str = "optimized",
) -> Program:
    """Raise :class:`PlanVerificationError` on any violation; else pass through."""
    violations = verify_program(program, verb=verb, database=database)
    if violations:
        raise PlanVerificationError(program, violations, stage=stage)
    return program
