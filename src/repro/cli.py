"""The ``repro`` console entry point.

* ``repro repl [files.csv ...]`` — interactive query shell; positional
  CSV/TSV files are pre-loaded as relations named after their stems.
* ``repro serve --port 7432`` — the concurrent line-JSON query server.
* ``repro client --port 7432 'COUNT R(X, Y)'`` — run statements against
  a server (from arguments, or stdin when none are given).
* ``repro verify 'Q(X) :- R(X, Y)'`` — lower the rule and statically
  verify the optimized program (exit 1 on violations).
* ``repro lint [paths ...]`` — run the repo-invariant linter (exit 1 on
  non-baselined findings).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-engine front door: REPL, server, and client.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    repl = commands.add_parser("repl", help="interactive query shell")
    repl.add_argument(
        "files", nargs="*", help="CSV/TSV files to pre-load as relations"
    )
    repl.add_argument(
        "--parallelism", type=int, default=None, help="engine worker count"
    )
    repl.add_argument(
        "--timeout", type=float, default=None, help="per-statement timeout (s)"
    )

    serve = commands.add_parser("serve", help="run the line-JSON query server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7432)
    serve.add_argument(
        "files", nargs="*", help="CSV/TSV files to pre-load as relations"
    )
    serve.add_argument(
        "--parallelism", type=int, default=None, help="engine worker count"
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=4,
        help="statements executing at once",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=8,
        help="waiting statements before overload rejection",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-query deadline (s)",
    )
    serve.add_argument(
        "--max-timeout", type=float, default=None,
        help="cap on client-requested deadlines (s)",
    )

    client = commands.add_parser("client", help="send statements to a server")
    client.add_argument("statements", nargs="*", help="statements to run")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7432)
    client.add_argument(
        "--timeout", type=float, default=None, help="per-query deadline (s)"
    )

    verify = commands.add_parser(
        "verify", help="statically verify a query's optimized program"
    )
    verify.add_argument("query", help="a rule, e.g. 'Q(X, Z) :- R(X, Y), S(Y, Z)'")
    verify.add_argument(
        "--verb", choices=("exists", "count", "select"), default=None,
        help="workload to lower (default: exists for Boolean heads, else select)",
    )
    verify.add_argument("--strategy", default="auto", help="strategy key")
    verify.add_argument(
        "--load", action="append", default=[], metavar="FILE",
        help="CSV/TSV file to load first (relations missing from the query "
        "are created empty)",
    )

    lint = commands.add_parser(
        "lint", help="run the repo-invariant linter (repro.analysis.lint)"
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the src tree)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file of accepted fingerprints (default: the committed one)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the report to FILE (for CI artifacts)",
    )
    return parser


def _load_files(database, files: List[str]) -> None:
    for path in files:
        relation = database.load_csv(path)
        print(f"loaded {relation.name} ({len(relation)} rows)")


def _cmd_repl(args: argparse.Namespace) -> int:
    from .api.engine import QueryEngine
    from .db.database import Database
    from .lang.repl import run_repl
    from .lang.session import Session

    database = Database()
    _load_files(database, args.files)
    kwargs = {} if args.parallelism is None else {"parallelism": args.parallelism}
    engine = QueryEngine(database, **kwargs)
    run_repl(Session(engine=engine), timeout=args.timeout)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api.engine import QueryEngine
    from .db.database import Database
    from .server.server import QueryServer

    database = Database()
    _load_files(database, args.files)
    kwargs = {} if args.parallelism is None else {"parallelism": args.parallelism}
    engine = QueryEngine(database, **kwargs)
    server = QueryServer(
        engine=engine,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue_depth=args.max_queue_depth,
        default_timeout=args.timeout,
        max_timeout=args.max_timeout,
    )

    async def run() -> None:
        await server.start()
        print(f"repro server listening on {server.address}")
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("draining...")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .server.client import QueryClient, ServerError

    statements = args.statements
    if not statements:
        statements = [
            line.strip()
            for line in sys.stdin
            if line.strip() and not line.strip().startswith("#")
        ]

    async def run() -> int:
        failures = 0
        client = await QueryClient.connect(args.host, args.port)
        try:
            for statement in statements:
                try:
                    document = await client.execute(
                        statement, timeout=args.timeout
                    )
                except ServerError as error:
                    failures += 1
                    print(error.document.get("diagnostic") or f"error: {error}")
                    continue
                kind = document.get("kind")
                payload = document.get("payload", {})
                if kind == "exists":
                    print(str(payload.get("answer")).lower())
                elif kind == "count":
                    print(payload.get("row_count"))
                elif kind == "select":
                    for row in document.get("rows", []):
                        print(tuple(row))
                else:
                    print(payload.get("text", payload))
        finally:
            await client.close()
        return 1 if failures else 0

    return asyncio.run(run())


def _cmd_verify(args: argparse.Namespace) -> int:
    from .api.engine import QueryEngine
    from .db.database import Database
    from .lang.parser import parse_query_text

    query = parse_query_text(args.query)
    database = Database()
    _load_files(database, args.load)
    # Missing relations become empty ones of the right arity: static
    # verification needs schemas and arities, not rows.  Column names are
    # synthesized because an atom may repeat a variable.
    missing = {
        atom.relation: (
            tuple(f"c{index}" for index in range(len(atom.variables))),
            [],
        )
        for atom in query.atoms
        if atom.relation not in database
    }
    if missing:
        database.bulk_load(missing)
    verb = args.verb or ("exists" if query.is_boolean else "select")
    engine = QueryEngine(database)
    violations = engine.verify(query, args.strategy, verb=verb)
    explanation = engine.explain(query, args.strategy, verb=verb)
    print(explanation.describe())
    if violations:
        print(f"plan FAILS verification ({len(violations)} violations):")
        for violation in violations:
            print(f"  {violation.describe()}")
        return 1
    print("plan verifies (0 violations)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from .analysis.lint import lint_paths

    paths = args.paths
    if not paths:
        # Default to the installed package's source tree, which is the
        # repo's src/ directory on a development checkout.
        paths = [os.path.dirname(os.path.abspath(__file__))]
    report = lint_paths(
        paths, baseline=args.baseline, use_baseline=not args.no_baseline
    )
    text = report.describe()
    print(text)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "repl":
        return _cmd_repl(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_client(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
