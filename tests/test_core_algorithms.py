"""Tests for the per-query-class algorithms (triangle, clique, 4-cycle)."""

from __future__ import annotations

import pytest

from repro.constants import OMEGA_BEST_KNOWN
from repro.core import (
    clique_detect_bruteforce,
    clique_detect_mm,
    enumerate_cliques,
    four_cycle_adaptive,
    four_cycle_combinatorial,
    four_cycle_detect,
    four_cycle_matrix_only,
    triangle_detect,
    triangle_figure1,
    triangle_matrix_only,
    triangle_naive,
)
from repro.db import clique_instance, four_cycle_instance, triangle_instance
from repro.matmul import triangle_threshold

OMEGA = OMEGA_BEST_KNOWN


class TestTriangleFigure1:
    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_naive(self, seed):
        db = triangle_instance(
            120,
            domain_size=24,
            skew="heavy" if seed % 2 else "uniform",
            plant_triangle=(seed % 3 == 0),
            seed=seed,
        )
        expected = triangle_naive(db)
        report = triangle_figure1(db, OMEGA)
        assert report.answer == expected
        assert report.threshold == triangle_threshold(
            max(len(db["R"]), len(db["S"]), len(db["T"])), OMEGA
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_matrix_only_agrees(self, seed):
        db = triangle_instance(80, domain_size=20, seed=seed, plant_triangle=(seed == 2))
        assert triangle_matrix_only(db) == triangle_naive(db)

    @pytest.mark.parametrize("threshold", [0, 1, 3, 10, 10_000])
    def test_answer_invariant_under_threshold(self, threshold):
        """The heavy/light split only affects cost, never correctness."""
        db = triangle_instance(100, domain_size=20, skew="heavy", seed=7, plant_triangle=True)
        assert triangle_figure1(db, OMEGA, threshold=threshold).answer

    def test_empty_instance(self):
        from repro.db import Database, Relation

        db = Database(
            {
                "R": Relation(("X", "Y"), []),
                "S": Relation(("Y", "Z"), []),
                "T": Relation(("X", "Z"), []),
            }
        )
        assert not triangle_figure1(db, OMEGA).answer
        assert not triangle_matrix_only(db)

    def test_strategy_dispatch(self):
        db = triangle_instance(50, seed=1, plant_triangle=True)
        for strategy in ("figure1", "naive", "generic_join", "matrix_only"):
            assert triangle_detect(db, strategy=strategy)
        with pytest.raises(ValueError):
            triangle_detect(db, strategy="quantum")

    def test_heavy_instance_exercises_mm_path(self):
        """On a hub-skewed instance the heavy matrix is non-trivial."""
        db = triangle_instance(400, domain_size=40, skew="heavy", seed=3)
        report = triangle_figure1(db, OMEGA)
        expected = triangle_naive(db)
        assert report.answer == expected


class TestFourCycle:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_strategies_agree(self, seed):
        db = four_cycle_instance(
            90,
            domain_size=20,
            plant_cycle=(seed % 3 == 0),
            skew="heavy" if seed % 2 else "uniform",
            seed=seed,
        )
        expected = four_cycle_combinatorial(db)
        assert four_cycle_matrix_only(db) == expected
        assert four_cycle_adaptive(db, OMEGA).answer == expected
        assert four_cycle_detect(db, strategy="generic_join") == expected

    def test_adaptive_reports_threshold(self):
        db = four_cycle_instance(100, seed=0, plant_cycle=True)
        report = four_cycle_adaptive(db, OMEGA)
        assert report.answer
        assert report.threshold >= 1

    def test_strategy_dispatch_error(self):
        db = four_cycle_instance(20, seed=0)
        with pytest.raises(ValueError):
            four_cycle_detect(db, strategy="unknown")


class TestCliqueDetection:
    def test_enumerate_cliques_counts(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 3)]
        assert len(enumerate_cliques(edges, 3)) == 1
        assert enumerate_cliques(edges, 3) == [(0, 1, 2)]
        assert len(enumerate_cliques(edges, 2)) == 4

    @pytest.mark.parametrize("k", [3, 4, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mm_detection_matches_bruteforce(self, k, seed):
        _, db = clique_instance(k, 60, domain_size=16, plant_clique=(seed == 1), seed=seed)
        edges = list(db["E0"].rows)
        expected = clique_detect_bruteforce(edges, k)
        report = clique_detect_mm(edges, k, OMEGA)
        assert report.answer == expected
        assert report.group_sizes[0] >= report.group_sizes[1] >= report.group_sizes[2]

    def test_planted_clique_is_found(self):
        _, db = clique_instance(5, 80, domain_size=20, plant_clique=True, seed=4)
        edges = list(db["E0"].rows)
        assert clique_detect_mm(edges, 5, OMEGA).answer

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            clique_detect_mm([(0, 1)], 2, OMEGA)
