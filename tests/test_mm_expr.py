"""Tests for MM expressions and the EMM enumeration (Definitions 4.2 and 4.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.constants import OMEGA_BEST_KNOWN
from repro.hypergraph import (
    Hypergraph,
    four_clique,
    four_cycle,
    matrix_product_query,
    three_pyramid,
    triangle,
)
from repro.polymatroid import evaluate, modular
from repro.width import MMTerm, emm_value, enumerate_mm_terms
from tests.conftest import random_entropic_polymatroid


def _labels(terms):
    return {t.label() for t in terms}


class TestMMTerm:
    def test_parts_must_be_disjoint(self):
        with pytest.raises(ValueError):
            MMTerm(
                first=frozenset("X"),
                second=frozenset("X"),
                eliminated=frozenset("Y"),
                group_by=frozenset(),
            )
        with pytest.raises(ValueError):
            MMTerm(
                first=frozenset(),
                second=frozenset("X"),
                eliminated=frozenset("Y"),
                group_by=frozenset(),
            )

    def test_three_expressions_and_symmetry(self, omega):
        term = MMTerm(
            first=frozenset("X"),
            second=frozenset("Y"),
            eliminated=frozenset("Z"),
            group_by=frozenset(),
        )
        assert len(term.expressions(omega)) == 3
        h = modular({"X": 0.7, "Y": 0.3, "Z": 0.9})
        swapped = MMTerm(
            first=frozenset("Y"),
            second=frozenset("Z"),
            eliminated=frozenset("X"),
            group_by=frozenset(),
        )
        assert term.evaluate(h, omega) == pytest.approx(swapped.evaluate(h, omega))

    def test_evaluate_matches_eq7(self, omega):
        """Against the explicit formula (7) for MM(X;Y;Z) on a modular h."""
        gamma = omega - 2.0
        h = modular({"X": 0.4, "Y": 0.8, "Z": 0.2})
        term = MMTerm(
            first=frozenset("X"),
            second=frozenset("Y"),
            eliminated=frozenset("Z"),
            group_by=frozenset(),
        )
        expected = max(
            0.4 + 0.8 + gamma * 0.2,
            0.4 + gamma * 0.8 + 0.2,
            gamma * 0.4 + 0.8 + 0.2,
        )
        assert term.evaluate(h, omega) == pytest.approx(expected)

    def test_expressions_agree_with_evaluate(self, omega):
        term = MMTerm(
            first=frozenset("X"),
            second=frozenset("Y"),
            eliminated=frozenset("Z"),
            group_by=frozenset("W"),
        )
        h = random_entropic_polymatroid(["X", "Y", "Z", "W"], 9)
        via_expressions = max(evaluate(e, h) for e in term.expressions(omega))
        assert via_expressions == pytest.approx(term.evaluate(h, omega))

    def test_relaxation_upper_bounds_value(self, omega):
        term = MMTerm(
            first=frozenset("X"),
            second=frozenset("Y"),
            eliminated=frozenset("Z"),
            group_by=frozenset("W"),
        )
        for seed in (0, 3, 17):
            h = random_entropic_polymatroid(["X", "Y", "Z", "W"], seed)
            assert evaluate(term.relaxation(omega), h) >= term.evaluate(h, omega) - 1e-9

    @given(st.integers(min_value=0, max_value=2_000))
    def test_proposition_4_3(self, seed):
        """MM(X;Y;Z|G) >= max(h(XYG), h(YZG), h(XZG)) on entropic polymatroids."""
        omega = OMEGA_BEST_KNOWN
        h = random_entropic_polymatroid(["X", "Y", "Z", "W"], seed)
        term = MMTerm(
            first=frozenset("X"),
            second=frozenset("Y"),
            eliminated=frozenset("Z"),
            group_by=frozenset("W"),
        )
        value = term.evaluate(h, omega)
        assert value >= h(["X", "Y", "W"]) - 1e-9
        assert value >= h(["Y", "Z", "W"]) - 1e-9
        assert value >= h(["X", "Z", "W"]) - 1e-9

    @given(st.integers(min_value=0, max_value=2_000))
    def test_proposition_4_4(self, seed):
        """At ω = 3, MM(X;Y;Z|G) >= h(XYZG)."""
        h = random_entropic_polymatroid(["X", "Y", "Z", "W"], seed)
        term = MMTerm(
            first=frozenset("X"),
            second=frozenset("Y"),
            eliminated=frozenset("Z"),
            group_by=frozenset("W"),
        )
        assert term.evaluate(h, 3.0) >= h(["X", "Y", "Z", "W"]) - 1e-9


class TestEMMEnumeration:
    def test_triangle_single_term(self):
        terms = enumerate_mm_terms(triangle(), "Y")
        assert _labels(terms) == {"MM(X;Z;Y)"}

    def test_four_clique_matches_example_4_6(self):
        """Example 4.6 lists six ways to eliminate X from the 4-clique."""
        terms = enumerate_mm_terms(four_clique(), "X")
        structure = {
            (frozenset({t.first, t.second}), t.group_by) for t in terms
        }
        expected = {
            (frozenset({frozenset("Y"), frozenset("Z")}), frozenset("W")),
            (frozenset({frozenset("Y"), frozenset("W")}), frozenset("Z")),
            (frozenset({frozenset("Z"), frozenset("W")}), frozenset("Y")),
            (frozenset({frozenset("Y"), frozenset({"Z", "W"})}), frozenset()),
            (frozenset({frozenset("Z"), frozenset({"Y", "W"})}), frozenset()),
            (frozenset({frozenset("W"), frozenset({"Y", "Z"})}), frozenset()),
        }
        assert structure == expected
        assert all(t.eliminated == frozenset("X") for t in terms)

    def test_four_cycle_elimination(self):
        terms = enumerate_mm_terms(four_cycle(), "X2")
        # N(X2) = {X1, X3}; the only split is first={X1}, second={X3}.
        assert _labels(terms) == {"MM(X1;X3;X2)"}

    def test_block_elimination_of_matrix_product_query(self):
        """Section 4.1: eliminating {Y1, Y2} at once allows the combined MM."""
        h = matrix_product_query()
        terms = enumerate_mm_terms(h, {"Y1", "Y2"})
        assert "MM(X;Z;Y1Y2)" in _labels(terms)
        # Eliminating only Y2 keeps Y1 as a group-by variable.
        terms_single = enumerate_mm_terms(h, "Y2")
        assert "MM(X;Z;Y2|Y1)" in _labels(terms_single)

    def test_unrealizable_partitions_are_excluded(self):
        """A hyperedge spanning both outer dimensions kills the split."""
        h = three_pyramid()
        terms = enumerate_mm_terms(h, "Y")
        labels = _labels(terms)
        # The wide edge {X1,X2,X3} never needs to be split (it does not
        # contain Y), so all pairings of the Xi remain available...
        assert "MM(X1;X2;Y|X3)" in labels
        # ... but eliminating a base vertex cannot place the other two base
        # vertices on different sides, because the wide edge joins them.
        terms_x1 = enumerate_mm_terms(h, "X1")
        assert "MM(X2;X3;X1|Y)" not in _labels(terms_x1)
        assert "MM(X2X3;Y;X1)" in _labels(terms_x1)

    def test_isolated_block_has_no_terms(self):
        h = Hypergraph("XYZ", [("X", "Y")])
        assert enumerate_mm_terms(h, "Z") == []

    def test_neighbourhood_cap(self):
        assert enumerate_mm_terms(four_clique(), "X", max_neighbourhood=2) == []

    def test_emm_value(self, omega):
        h = modular({"X": 0.5, "Y": 0.5, "Z": 0.5})
        value = emm_value(triangle(), "Y", h, omega)
        assert value == pytest.approx(1.0 + (omega - 2.0) * 0.5)
        assert emm_value(Hypergraph("XYZ", [("X", "Y")]), "Z", h, omega) == float("inf")
