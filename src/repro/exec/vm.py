"""The instrumented virtual machine executing physical-operator programs.

One executor for every strategy: the VM walks a lowered
:class:`~repro.exec.ir.Program` bottom-up, evaluates each operator against
the database through the pluggable :class:`~repro.db.relation.Relation`
kernels, and records a per-operator trace (rows in/out, the storage-backend
kernel used, wall-clock seconds, cache provenance, worker and morsel
diagnostics) that feeds :meth:`repro.api.QueryEngine.explain` and the
benchmarks.

Evaluation is lazy where emptiness already decides the result: a join whose
left side is empty never evaluates its right side, ``Any``/``All``
short-circuit, and a ``NonEmpty`` root stops as soon as the answer is
known.  Row-at-a-time fallbacks that used to live in ``db/joins.py`` and
``core/executor.py`` (the GenericJoin backtracking search, the grouped
Boolean-matrix elimination) are operator implementations here.

Parallel execution
------------------
With ``parallelism > 1`` the VM becomes a morsel-driven parallel executor
on two levels:

* **DAG-level** — a topological scheduler dispatches *independent*
  operators concurrently on a shared :class:`WorkerPool` (the columnar
  NumPy kernels release the GIL, so sibling subtrees genuinely overlap).
  Scheduling is speculative-but-deterministic: operators run as soon as
  their operands are available, an operator whose short-circuit operand
  (:attr:`~repro.exec.ir.Operator.empty_short_circuit`) comes out empty
  completes immediately, and subtrees no other live consumer needs are
  *cancelled*.  The reported traces are filtered to the operators the
  sequential lazy semantics would have evaluated (the deterministic
  *needed set*), so results and trace row-counts are bit-identical to a
  sequential run — speculatively computed doomed work costs time, never
  determinism.
* **Morsel-level** — the data-parallel operators (Join,
  Semijoin/Antijoin/MultiSemijoin, deduplicating Project, GroupedMatMul)
  split their probe side into fixed-size code-array chunks
  (:meth:`~repro.db.relation.Relation.split_morsels`), execute the chunks
  concurrently on the pool's kernel executor and recombine
  (:meth:`~repro.db.relation.Relation.concat_morsels`), so one huge
  operator no longer serialises the machine.  Chunk boundaries come from
  the statistics-driven :class:`~repro.exec.dispatch.KernelDispatcher`,
  which also resolves mixed-backend operand pairs and picks the
  Strassen-vs-BLAS matrix path.

The two levels use *separate* thread pools (``WorkerPool.dag`` /
``WorkerPool.kernel``): DAG tasks may block on morsel chunks, morsel
chunks never block on anything, so the system cannot deadlock however
small the pools are.

Cross-query sharing
-------------------
The VM consults an optional bounded :class:`ResultCache` keyed by
``(operator structural key, per-relation fingerprint)``.  Because
structural keys are name-insensitive (see :mod:`repro.exec.ir`), isomorphic
queries in an :meth:`~repro.api.QueryEngine.ask_many` batch share every
common subplan: the cached relation is renamed — an O(1) schema swap — into
the requesting operator's columns.

The fingerprint is *per operator*: each node keys on the versions of only
the relations in its scan closure (the Scans reachable beneath it), via
:meth:`~repro.db.Database.fingerprint_for`.  Mutating relation ``R``
therefore invalidates exactly the subplans that read ``R`` — after a
single-tuple delta, a re-run recomputes only the operators along the
join-tree path touched by the delta'd relation while every untouched
calibrated subtree is served from cache.  Structural keys embed the scan
relation names transitively, so two nodes with equal skeys always have
equal scan closures and the sharing stays sound.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union as TUnion,
)

import numpy as np

from ..db.database import Database
from ..db.ordering import value_order_key
from ..db.relation import Relation, Row
from ..matmul.boolean import boolean_multiply, matrix_from_pairs
from .dispatch import DEFAULT_DISPATCHER, KernelDispatcher
from .ir import (
    All_,
    Antijoin,
    Any_,
    Count,
    Enumerate,
    GroupedMatMul,
    HeavyPart,
    Join,
    LightPart,
    MatMul,
    MultiSemijoin,
    NonEmpty,
    Operator,
    Program,
    Project,
    Restrict,
    Scan,
    Semijoin,
    Union,
    Wcoj,
)

#: Operator results: a relation, a Boolean (NonEmpty/Any/All), an int
#: (the Count sink), or a pull-driven :class:`EnumerationStream` (the
#: streaming Enumerate sink).  ``bool`` must be tested before ``int``
#: everywhere — Python's bool is an int subclass.
Payload = TUnion[Relation, bool, int, "EnumerationStream"]
#: A child-payload provider: returns the child's result, raising
#: :class:`_NotReady` (parallel mode) when it is not available yet.
Getter = Callable[[Operator], Payload]


class _NotReady(Exception):
    """Raised by the parallel payload provider for a still-pending child."""

    def __init__(self, node: Operator) -> None:
        super().__init__(node.label())
        self.node = node


# ----------------------------------------------------------------------
# Cooperative cancellation
# ----------------------------------------------------------------------
class CancellationToken:
    """A thread-safe flag threaded through a VM run for cooperative cancels.

    Two ways a token fires: an explicit :meth:`cancel` (a client
    disconnected, the server is draining) or a *deadline* — a monotonic
    timestamp after which the token reports cancelled and
    :attr:`timed_out` is true.  Both schedulers consult the token between
    operators (and the WCOJ row search consults it between bound-variable
    extensions), so cancellation latency is one operator/kernel call, not
    one query.  Checks are lock-free reads; tokens are cheap enough to
    build one per ask.
    """

    __slots__ = ("_cancelled", "_deadline", "_timed_out")

    def __init__(self, deadline: Optional[float] = None) -> None:
        #: Absolute ``time.monotonic()`` timestamp, or ``None``.
        self._deadline = deadline
        self._cancelled = False
        self._timed_out = False

    @classmethod
    def with_deadline(cls, seconds: float) -> "CancellationToken":
        """A token that fires ``seconds`` from now (``<= 0`` fires at once)."""
        return cls(deadline=time.monotonic() + seconds)

    def cancel(self) -> None:
        """Fire the token explicitly (idempotent; never marks a timeout)."""
        self._cancelled = True

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one; may be < 0)."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self._timed_out = True
            self._cancelled = True
            return True
        return False

    @property
    def timed_out(self) -> bool:
        """Whether the cancellation came from the deadline expiring."""
        return self.cancelled and self._timed_out

    def check(self) -> None:
        """Raise :class:`QueryCancelled` if the token has fired."""
        if self.cancelled:
            raise QueryCancelled(timed_out=self._timed_out)


class QueryCancelled(RuntimeError):
    """A VM run was cancelled (deadline expiry or explicit cancel).

    The VM enriches the exception on its way out with the partial traces
    of the operators that *did* complete, how many program operators were
    abandoned (``cancelled_ops``), and the scheduling mode — so callers
    (the engine, and through it the server) can report timeout-triggered
    cancellation uniformly for sequential and parallel runs.
    """

    def __init__(self, timed_out: bool = False) -> None:
        super().__init__(
            "query execution timed out" if timed_out else "query execution cancelled"
        )
        self.timed_out = timed_out
        #: Operators abandoned by the cancellation (not evaluated, or
        #: evaluated speculatively and discarded).
        self.cancelled_ops = 0
        #: Traces of the operators that completed before the token fired.
        self.traces: List["OpTrace"] = []
        self.parallelism = 1
        self.seconds = 0.0


@dataclass
class OpTrace:
    """Diagnostics for one executed operator."""

    op_id: int
    kind: str
    label: str
    schema: Tuple[str, ...]
    rows_in: int
    rows_out: int
    #: Which kernel family served the operator: a storage-backend name
    #: ("set", "columnar") for relational operators, "bool" for the
    #: Boolean combinators.
    kernel: str
    #: Exclusive compute seconds — the operator's own kernel time with the
    #: children's time subtracted out (the sum over all traces therefore
    #: approximates the total *work*, not the wall clock).
    seconds: float
    cache_hit: bool = False
    matrix_shape: Optional[Tuple[int, int, int]] = None
    group_count: int = 0
    #: Which pool worker executed the operator (``None`` when the run was
    #: sequential).
    worker: Optional[str] = None
    #: How many probe-side chunks the operator was split into (0 = the
    #: operator ran unsplit).
    morsel_count: int = 0
    #: Inclusive span of the operator's evaluation.  Sequentially this
    #: includes the children's time; in a parallel run the children were
    #: already materialized, so wall and exclusive coincide — comparing
    #: the two against the run total is how the parallel schedule reads.
    wall_seconds: float = 0.0
    #: Ranked-enumeration frontier-heap accounting (0 unless the operator
    #: was a ranked Enumerate sink): the largest heap size the drain
    #: reached, and how many nodes were popped.  ``heap_pops`` bounds the
    #: total work — each pop costs one heap operation plus O(join tree)
    #: restriction work — so ``pops ≈ k × depth`` is the signature of a
    #: healthy any-k run, while ``peak`` shows the memory high-water mark.
    heap_peak: int = 0
    heap_pops: int = 0

    def describe(self) -> str:
        flags = " [cached]" if self.cache_hit else ""
        extra = (
            f" shape={self.matrix_shape} groups={self.group_count}"
            if self.matrix_shape is not None
            else ""
        )
        if self.morsel_count:
            extra += f" morsels={self.morsel_count}"
        if self.heap_pops:
            extra += f" heap={self.heap_pops}p/{self.heap_peak}max"
        if self.worker is not None:
            extra += f" worker={self.worker}"
        return (
            f"#{self.op_id} {self.label}: {self.rows_in} -> {self.rows_out} rows "
            f"({self.kernel}, {self.seconds * 1000:.2f} ms){extra}{flags}"
        )


class EnumerationStream:
    """A pull-driven cursor over a streaming :class:`~repro.exec.ir.Enumerate` sink.

    Produced by both schedulers when the Enumerate root asks for streaming
    delivery (``order="stream"``, ``order="ranked"`` — see
    :class:`RankedEnumerationStream` — or a frontier-carrying sink).  By
    the time the stream exists, the sink's children — the calibrated
    reducer state — are fully evaluated; that work is the ~``exists``-cost prefix, and calibration is
    what makes early stopping sound (after the upward/downward semijoin
    passes every root tuple extends to at least one output tuple).  The
    top-down enumeration join itself runs lazily inside a generator: the
    root relation is consumed in geometrically growing morsel chunks, each
    chunk joined through the calibrated frontier relations with early
    projection onto the outputs plus still-needed join keys (intermediates
    stay bounded by chunk × output), deduplicated against everything
    already emitted, and handed out as one batch.

    ``order="stream"`` stops expanding as soon as ``limit`` distinct
    tuples exist; ``order="sorted"`` with a limit must see every distinct
    tuple (the result set keeps a bounded candidate selection) but still
    never materializes the join.  The run's cancellation token is checked
    per chunk, and the attached :class:`OpTrace` records the tuples
    actually emitted, not the full output.
    """

    #: First chunk size — small so the first batch arrives after O(chunk)
    #: work (time-to-first-row); later chunks double up to the
    #: dispatcher's morsel size.  Kept tiny because each root row fans
    #: out: a calibrated root tuple extends to at least one and often
    #: many output tuples, so even 8 rows usually cover a small limit.
    INITIAL_CHUNK = 8

    def __init__(
        self,
        node: Enumerate,
        root: Relation,
        frontiers: Sequence[Relation],
        token: Optional[CancellationToken],
        morsel_size: int,
    ) -> None:
        self.schema = node.schema
        self.limit = node.limit
        self.order = node.order
        self._root = root
        self._frontiers = list(frontiers)
        self._token = token
        self._morsel = max(int(morsel_size), self.INITIAL_CHUNK)
        #: ``stream`` order truncates inside the join; ``sorted`` scans
        #: every distinct tuple so the caller can pick the smallest k.
        self._stop = self.limit if self.order == "stream" else None
        self.kernel = root.backend_kind
        self.rows_in = len(root) + sum(len(f) for f in self._frontiers)
        self.emitted = 0
        self.chunks_scanned = 0
        self.exhausted = False
        self._trace: Optional["OpTrace"] = None
        self._generator = self._produce()

    @property
    def nonempty(self) -> bool:
        """Whether the output is nonempty — decided without pulling.

        Free by the full-reducer property: the upward pass already
        removed every root tuple that extends to no output tuple, so the
        calibrated root is nonempty iff the query output is.
        """
        return not self._root.is_empty()

    def attach_trace(self, trace: "OpTrace") -> None:
        """Let the sink's trace row count follow the tuples emitted."""
        self._trace = trace
        trace.rows_out = self.emitted

    def next_batch(self) -> Optional[List[Row]]:
        """The next batch of fresh output tuples (``None`` once exhausted).

        Raises :class:`QueryCancelled` when the run's token fires between
        chunks.  Batches already handed out stay valid, and the calibrated
        children a completed prefix put in the result cache are correct,
        so a cancelled stream never poisons later runs.
        """
        if self.exhausted:
            return None
        try:
            batch = next(self._generator)
        except StopIteration:
            self.exhausted = True
            return None
        return batch

    def drain(self) -> Iterator[List[Row]]:
        """Iterate the remaining batches."""
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch

    def _produce(self) -> Iterator[List[Row]]:
        if self._stop == 0:
            return
        outputs = tuple(self.schema)
        # The projection wanted after each frontier join: outputs plus the
        # join keys later frontiers still need.
        needed_after: List[set] = []
        acc = set(outputs)
        for frontier in reversed(self._frontiers):
            needed_after.append(set(acc))
            acc |= frontier.variables
        needed_after.reverse()
        # A pass-through root (no frontiers, schema already the outputs)
        # is distinct by construction; chunks are then disjoint.
        dedup = bool(self._frontiers) or outputs != tuple(self._root.schema)
        seen: set = set()
        total = len(self._root)
        position = 0
        chunk_rows = min(self.INITIAL_CHUNK, self._morsel)
        while position < total:
            if self._token is not None:
                self._token.check()
            part = self._root.row_slice(position, position + chunk_rows)
            position += chunk_rows
            chunk_rows = min(chunk_rows * 2, self._morsel)
            self.chunks_scanned += 1
            for frontier, needed in zip(self._frontiers, needed_after):
                part = part.join(frontier)
                keep = [v for v in part.schema if v in needed]
                if tuple(keep) != part.schema:
                    part = part.project(keep)
                if part.is_empty():
                    break
            if part.is_empty():
                continue
            if tuple(part.schema) != outputs:
                part = part.project(list(outputs))
            if dedup:
                fresh = [row for row in part if row not in seen]
                seen.update(fresh)
            else:
                fresh = list(part)
            if not fresh:
                continue
            if self._stop is not None and self.emitted + len(fresh) > self._stop:
                fresh = fresh[: self._stop - self.emitted]
            self.emitted += len(fresh)
            if self._trace is not None:
                self._trace.rows_out = self.emitted
            yield fresh
            if self._stop is not None and self.emitted >= self._stop:
                return


class RankedEnumerationStream(EnumerationStream):
    """Any-k ranked enumeration: the globally next tuple per pop.

    The ``order="ranked"`` cursor the dispatcher picks for sorted selects
    with a small limit.  Instead of scanning the root in discovery order,
    it walks a *trie of output-variable prefixes* best-first with a
    frontier priority queue (Lawler-style lazy successor expansion):

    * a heap node is one prefix of output values plus the position of a
      candidate value for the next variable; its key is the tuple of
      :func:`~repro.db.ordering.value_order_key` components of the prefix
      extended by that candidate, so Python's tuple comparison makes a
      prefix sort before every one of its extensions — exactly the
      invariant that keeps the minimal heap key a lower bound on every
      not-yet-emitted output tuple;
    * popping a node pushes at most two successors — the *sibling* (the
      next candidate value at the same position, key recomputed in O(1))
      and the *child* (the relations restricted to the popped value and
      recalibrated by semijoin sweeps along the join tree's ``parents``
      edges, with candidates for the next output variable);
    * candidates at every level come free from the full-reducer property:
      on calibrated relations the projection of the join onto one
      variable equals the projection of *any* relation containing it, so
      the level's value list is
      :meth:`~repro.db.relation.Relation.ordered_distinct_values` of the
      smallest such relation — no join is ever materialized.

    A full-depth pop emits its tuple, so tuples stream out in exactly the
    deterministic sorted order of :func:`~repro.db.ordering.row_order_key`
    — byte-identical to materialize-and-sort — at a cost of O(log heap) +
    O(join tree) restriction work per pop.  With a limit ``k`` the drain
    stops after ``k`` tuples: a sorted-limit select costs the calibrated
    prefix (~``exists``) plus O(k · depth) pops instead of a full-output
    scan.  The cancellation token is checked per pop; ``heap_peak`` /
    ``heap_pops`` land in the attached :class:`OpTrace`.
    """

    def __init__(
        self,
        node: Enumerate,
        root: Relation,
        frontiers: Sequence[Relation],
        token: Optional[CancellationToken],
        morsel_size: int,
    ) -> None:
        super().__init__(node, root, frontiers, token, morsel_size)
        #: Ranked delivery is already sorted, so the limit truncates the
        #: drain itself (the base class leaves ``_stop`` unset for any
        #: order other than ``stream``).
        self._stop = self.limit
        self.heap_peak = 0
        self.heap_pops = 0
        rels = [root, *frontiers]
        if node.parents:
            # parents[i] is the join-tree parent of frontier i as an index
            # into [child, *frontiers]; pad the root so _parents aligns
            # with the ``rels`` list.
            self._parents: Tuple[int, ...] = (0,) + tuple(node.parents)
        else:
            # Hand-built nodes may omit parents: fall back to the nearest
            # earlier relation sharing a variable (the sequence is
            # root-first, so this reconstructs a valid tree order).
            derived = [0]
            for j in range(1, len(rels)):
                parent = 0
                for i in range(j - 1, -1, -1):
                    if rels[i].variables & rels[j].variables:
                        parent = i
                        break
                derived.append(parent)
            self._parents = tuple(derived)

    def attach_trace(self, trace: "OpTrace") -> None:
        super().attach_trace(trace)
        trace.heap_peak = self.heap_peak
        trace.heap_pops = self.heap_pops

    # -- enumeration helpers -------------------------------------------
    def _level_candidates(self, rels: List[Relation], variable: str) -> List:
        """The ordered distinct values ``variable`` takes in the join.

        Exact by calibration: every relation containing the variable
        agrees on its projection, so the smallest one is scanned.
        """
        best: Optional[Relation] = None
        for rel in rels:
            if variable in rel.variables and (best is None or len(rel) < len(best)):
                best = rel
        if best is None:
            raise ValueError(
                f"ranked enumeration: output variable {variable!r} is not "
                "covered by the enumeration inputs"
            )
        return best.ordered_distinct_values(variable)

    def _restrict(
        self, rels: List[Relation], variable: str, value: object
    ) -> Optional[List[Relation]]:
        """``rels`` with ``variable = value``, recalibrated (``None`` if empty).

        Restriction can strand tuples in *other* relations (they joined
        only with now-removed rows), so the full-reducer sweeps rerun
        along the join-tree ``parents`` edges: leaves-up semijoins carry
        the restriction to the root, then a root-down pass calibrates the
        leaves.  Both sweeps are O(join tree) vectorized kernel calls.
        """
        out = list(rels)
        for i, rel in enumerate(out):
            if variable in rel.variables:
                restricted = rel.restrict(variable, (value,))
                if restricted.is_empty():
                    return None
                out[i] = restricted
        parents = self._parents
        for i in range(len(out) - 1, 0, -1):
            reduced = out[parents[i]].semijoin(out[i])
            if reduced.is_empty():
                return None
            out[parents[i]] = reduced
        for i in range(1, len(out)):
            out[i] = out[i].semijoin(out[parents[i]])
        return out

    def _produce(self) -> Iterator[List[Row]]:
        if self._stop == 0 or self._root.is_empty():
            return
        outputs = tuple(self.schema)
        if not outputs:
            # Nullary head: the single empty tuple, iff the calibrated
            # root is nonempty (it is — checked above).
            self.emitted = 1
            if self._trace is not None:
                self._trace.rows_out = 1
            yield [()]
            return
        rels = [self._root, *self._frontiers]
        last = len(outputs) - 1
        # Heap nodes: (key, seq, depth, prefix, values, index, rels).
        # ``seq`` breaks key ties so heapq never compares the payload.
        heap: List[Tuple] = []
        seq = 0
        values = self._level_candidates(rels, outputs[0])
        if not values:
            return
        heap.append(((value_order_key(values[0]),), seq, 0, (), values, 0, rels))
        seq += 1
        self.heap_peak = 1
        batch: List[Row] = []
        batch_cap = min(self.INITIAL_CHUNK * 2, self._morsel)
        while heap:
            if self._token is not None:
                # Per-pop cancellation: a deadline fires within one heap
                # operation even mid-drain.
                self._token.check()
            key, _, depth, prefix, level, index, cur = heapq.heappop(heap)
            self.heap_pops += 1
            value = level[index]
            if index + 1 < len(level):
                # Sibling: same prefix, next candidate — O(1) key update.
                sibling_key = key[:-1] + (value_order_key(level[index + 1]),)
                heapq.heappush(
                    heap, (sibling_key, seq, depth, prefix, level, index + 1, cur)
                )
                seq += 1
            if depth == last:
                batch.append(prefix + (value,))
                self.emitted += 1
                if self._trace is not None:
                    self._trace.rows_out = self.emitted
                    self._trace.heap_peak = self.heap_peak
                    self._trace.heap_pops = self.heap_pops
                done = self._stop is not None and self.emitted >= self._stop
                if done or len(batch) >= batch_cap:
                    yield batch
                    batch = []
                    batch_cap = min(batch_cap * 2, self._morsel, 4096)
                    if done:
                        return
            else:
                child_rels = self._restrict(cur, outputs[depth], value)
                if child_rels is not None:
                    child_values = self._level_candidates(
                        child_rels, outputs[depth + 1]
                    )
                    if child_values:
                        child_key = key + (value_order_key(child_values[0]),)
                        heapq.heappush(
                            heap,
                            (
                                child_key,
                                seq,
                                depth + 1,
                                prefix + (value,),
                                child_values,
                                0,
                                child_rels,
                            ),
                        )
                        seq += 1
            if len(heap) > self.heap_peak:
                self.heap_peak = len(heap)
        if self._trace is not None:
            self._trace.heap_peak = self.heap_peak
            self._trace.heap_pops = self.heap_pops
        if batch:
            yield batch


@dataclass
class VMResult:
    """What one program run produced: the answer plus full instrumentation."""

    answer: bool
    relation: Optional[Relation]
    #: The Count sink's scalar (``None`` unless the program root counts).
    row_count: Optional[int] = None
    #: The streaming Enumerate sink's pull cursor (``None`` unless the
    #: program root streams).  When set, ``relation`` is ``None`` — the
    #: output is never materialized inside the VM.
    stream: Optional[EnumerationStream] = None
    traces: List[OpTrace] = field(default_factory=list)
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Worker count the run was scheduled with (1 = sequential).
    parallelism: int = 1
    #: Operators that were computed speculatively but turned out not to be
    #: needed by the lazy semantics (their traces are excluded), plus
    #: subtrees the scheduler cancelled before they ran.
    speculative_ops: int = 0
    cancelled_ops: int = 0

    def trace_for(self, node: Operator, ids: Dict[Operator, int]) -> Optional[OpTrace]:
        """The trace of one operator (``None`` if it was short-circuited away)."""
        node_id = ids.get(node)
        if node_id is None:
            return None
        for trace in self.traces:
            if trace.op_id == node_id:
                return trace
        return None

    def describe(self) -> str:
        lines = [f"answer: {self.answer}  ({self.seconds * 1000:.2f} ms)"]
        if self.parallelism > 1:
            lines[0] += (
                f"  [workers={self.parallelism}"
                f" speculative={self.speculative_ops}"
                f" cancelled={self.cancelled_ops}]"
            )
        lines.extend(f"  {trace.describe()}" for trace in self.traces)
        return "\n".join(lines)


@dataclass(frozen=True)
class ResultCacheStats:
    """Effectiveness counters of the intermediate-result cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU of operator results shared across VM runs.

    Keys are ``(structural key, scan-closure fingerprint)`` — the
    fingerprint covers only the relations the operator actually reads
    (see :func:`_node_fingerprints`); values are the
    operator's declared schema plus its payload (a relation or a Boolean).
    ``maxsize <= 0`` disables the cache.  Memory is bounded two ways: a
    relation wider than ``max_entry_rows`` is never stored (the entry
    *count* alone would not bound a near-cross-product), and the LRU also
    evicts until the *sum* of retained rows fits ``max_total_rows``.
    All operations are serialized on an internal lock, so concurrent VM
    tasks (and engines sharding batches across threads) share one cache.
    """

    def __init__(
        self,
        maxsize: int = 32,
        max_entry_rows: int = 1_000_000,
        max_total_rows: int = 4_000_000,
    ) -> None:
        self.maxsize = maxsize
        self.max_entry_rows = max_entry_rows
        self.max_total_rows = max_total_rows
        # guarded-by: _lock; bounded-by: LRU eviction at maxsize/max_total_rows
        self._entries: "OrderedDict[Hashable, Tuple[Tuple[str, ...], Payload]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._total_rows = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Tuple[Tuple[str, ...], Payload]]:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    @staticmethod
    def _payload_rows(payload: Payload) -> int:
        return len(payload) if isinstance(payload, Relation) else 0

    def put(self, key: Hashable, schema: Tuple[str, ...], payload: Payload) -> None:
        if not self.enabled:
            return
        rows = self._payload_rows(payload)
        if rows > self.max_entry_rows:
            return
        with self._lock:
            if key in self._entries:
                self._total_rows -= self._payload_rows(self._entries[key][1])
            self._entries[key] = (schema, payload)
            self._entries.move_to_end(key)
            self._total_rows += rows
            while self._entries and (
                len(self._entries) > self.maxsize
                or self._total_rows > self.max_total_rows
            ):
                _, (_, evicted) = self._entries.popitem(last=False)
                self._total_rows -= self._payload_rows(evicted)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total_rows = 0

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------
class WorkerPool:
    """Two thread pools shared by VM runs: DAG tasks and morsel chunks.

    Operator (DAG) tasks may block waiting for the chunks of a morsel
    fan-out; chunk tasks are pure leaf computations that never block.
    Keeping the two on separate executors makes the nesting trivially
    deadlock-free regardless of pool sizes.  One pool is shared across
    every ask of an engine so the threads are spawned once.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.workers = workers
        self._dag = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-dag"
        )
        self._kernel = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-morsel"
        )

    def submit_node(self, fn: Callable, *args) -> Future:
        return self._dag.submit(fn, *args)

    def submit_kernel(self, fn: Callable, *args) -> Future:
        return self._kernel.submit(fn, *args)

    def shutdown(self) -> None:
        self._dag.shutdown(wait=True)
        self._kernel.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _worker_name() -> Optional[str]:
    """A short tag for the executing pool worker (``None`` off-pool)."""
    name = threading.current_thread().name
    if "repro-dag" in name or "repro-morsel" in name:
        prefix, _, index = name.rpartition("_")
        return ("w" if "dag" in prefix else "m") + index
    return None


# ----------------------------------------------------------------------
# The virtual machine
# ----------------------------------------------------------------------
class VirtualMachine:
    """Executes operator programs against one database.

    Parameters
    ----------
    database:
        The data programs are evaluated against.
    result_cache:
        Optional cross-run intermediate-result cache.
    dispatcher:
        The adaptive kernel dispatcher; defaults to the process-wide
        :data:`~repro.exec.dispatch.DEFAULT_DISPATCHER`.
    parallelism:
        Target worker count.  ``1`` (the default) keeps the classic
        sequential recursive evaluator — bit-for-bit the PR 3 behaviour.
        ``> 1`` enables the parallel scheduler and morsel execution.
    pool:
        A shared :class:`WorkerPool` (e.g. the engine's).  When
        ``parallelism > 1`` and no pool is given, the VM creates and owns
        one (close it with :meth:`close` or use the VM as a context
        manager).
    dag_scheduling:
        When false, operators still evaluate sequentially but the
        data-parallel operators use morsel chunks on the pool's kernel
        executor.  This is the mode :meth:`~repro.api.QueryEngine.ask_many`
        uses for its batch shards — the shard tasks occupy the DAG
        executor, so nesting DAG scheduling inside them could starve it.
    token:
        Optional :class:`CancellationToken`.  Both schedulers check it
        cooperatively between operators (and inside the WCOJ row search),
        raising :class:`QueryCancelled` — carrying the partial traces and
        the abandoned-operator count — when it fires.  Already-completed
        operator results stay in the shared result cache (they are
        correct), so a timed-out ask never poisons later ones.
    """

    def __init__(
        self,
        database: Database,
        result_cache: Optional[ResultCache] = None,
        *,
        dispatcher: Optional[KernelDispatcher] = None,
        parallelism: int = 1,
        pool: Optional[WorkerPool] = None,
        dag_scheduling: bool = True,
        token: Optional[CancellationToken] = None,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        self.database = database
        self.result_cache = result_cache
        self.dispatcher = dispatcher if dispatcher is not None else DEFAULT_DISPATCHER
        self.parallelism = parallelism
        self.dag_scheduling = dag_scheduling
        self.token = token
        self._owns_pool = False
        if parallelism > 1 and pool is None:
            pool = WorkerPool(parallelism)
            self._owns_pool = True
        self.pool = pool if parallelism > 1 else None

    def close(self) -> None:
        """Shut down a pool this VM created (shared pools are left alone)."""
        if self._owns_pool and self.pool is not None:
            self.pool.shutdown()
            self.pool = None

    def __enter__(self) -> "VirtualMachine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, program: Program) -> VMResult:
        start = time.perf_counter()
        ids = program.node_ids()
        fingerprints = _node_fingerprints(program, self.database)
        context = _EvalContext(self)
        try:
            if self.pool is not None and self.dag_scheduling and self.parallelism > 1:
                result = _ParallelRun(self, program, ids, fingerprints, context).execute()
            else:
                state = _RunState(self, ids, fingerprints, context)
                try:
                    payload = state.eval(program.root)
                except QueryCancelled as exc:
                    # Uniform cancellation reporting: the sequential
                    # interpreter counts its abandoned operators the same
                    # way the parallel scheduler does.
                    exc.cancelled_ops = len(ids) - len(state.traces)
                    exc.traces = list(state.traces)
                    exc.parallelism = 1
                    raise
                answer, relation, row_count, stream = _interpret_root(payload)
                result = VMResult(
                    answer=answer,
                    relation=relation,
                    row_count=row_count,
                    stream=stream,
                    traces=state.traces,
                    cache_hits=state.cache_hits,
                    cache_misses=state.cache_misses,
                    parallelism=1,
                )
        except QueryCancelled as exc:
            exc.seconds = time.perf_counter() - start
            raise
        result.seconds = time.perf_counter() - start
        return result


def _node_fingerprints(
    program: Program, database: Database
) -> Dict[Operator, Hashable]:
    """Per-operator result-cache fingerprints from each node's scan closure.

    Computed in one topological pass (children first): a node's closure is
    the union of its children's closures plus its own relation when it is a
    :class:`Scan`.  The fingerprint covers only those relations'
    per-relation versions, so a cached subplan survives mutations to every
    relation it never reads.  Distinct closures are fingerprinted once per
    run (join-tree siblings typically share most of them).
    """
    closures: Dict[Operator, frozenset] = {}
    memo: Dict[frozenset, Hashable] = {}
    fingerprints: Dict[Operator, Hashable] = {}
    for node in program.nodes():
        names = {node.relation} if isinstance(node, Scan) else set()
        for child in node.children:
            names.update(closures[child])
        closure = frozenset(names)
        closures[node] = closure
        fingerprint = memo.get(closure)
        if fingerprint is None:
            fingerprint = memo[closure] = database.fingerprint_for(closure)
        fingerprints[node] = fingerprint
    return fingerprints


def _interpret_root(
    payload: Payload,
) -> Tuple[bool, Optional[Relation], Optional[int], Optional[EnumerationStream]]:
    """``(answer, relation, row_count, stream)`` from a program root's payload."""
    if isinstance(payload, bool):
        return payload, None, None, None
    if isinstance(payload, EnumerationStream):
        # The answer is known without pulling a single tuple: the
        # calibrated root's non-emptiness decides satisfiability.
        return payload.nonempty, None, None, payload
    if isinstance(payload, int):
        return payload > 0, None, int(payload), None
    return not payload.is_empty(), payload, None, None


# ----------------------------------------------------------------------
# Operator implementations (shared by the sequential and parallel paths)
# ----------------------------------------------------------------------
class _EvalContext:
    """Per-run operator evaluation: kernels, morsel fan-out, split memo.

    Child payloads arrive through a ``get`` callback so the same operator
    code serves both execution modes: the sequential evaluator passes its
    recursive ``eval`` (laziness = simply not calling ``get``), the
    parallel scheduler passes a memo lookup that raises :class:`_NotReady`
    for still-pending children (laziness = completing without them).
    """

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.dispatcher = vm.dispatcher
        self.pool = vm.pool
        self.workers = vm.parallelism if vm.pool is not None else 1
        # guarded-by: _locks_guard; bounded-by: per-run lifetime (one program)
        self.split_memo: Dict[Operator, Tuple[Relation, Relation]] = {}
        # guarded-by: _locks_guard
        self._split_locks: Dict[Operator, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _relation(get: Getter, node: Operator) -> Relation:
        payload = get(node)
        assert isinstance(payload, Relation)
        return payload

    def _run_chunks(self, thunks: Sequence[Callable[[], Relation]]) -> List[Relation]:
        """Execute morsel chunk thunks, fanning out on the kernel pool.

        The first chunk runs in the calling thread *before* the fan-out so
        the operands' lazily-built shared caches (dictionary indexes,
        composite-key sort orders) are warmed once instead of raced.
        """
        token = self.vm.token
        if self.pool is None or len(thunks) <= 1:
            results = []
            for thunk in thunks:
                if token is not None:
                    # Bound cancellation latency to one morsel when the
                    # operator was split but runs on the calling thread.
                    token.check()
                results.append(thunk())
            return results
        first = thunks[0]()
        futures = [self.pool.submit_kernel(thunk) for thunk in thunks[1:]]
        return [first] + [future.result() for future in futures]

    def _split(self, relation: Relation, count: int) -> Optional[List[Relation]]:
        if count <= 1:
            return None
        size = math.ceil(len(relation) / count)
        parts = relation.split_morsels(size)
        if parts is None or len(parts) <= 1:
            return None
        return parts

    def _heavy_light(
        self, node: TUnion[HeavyPart, LightPart], get: Getter
    ) -> Tuple[Relation, Relation]:
        """Both halves of a degree split, computed once per (child, given, Δ)."""
        twin_key = (
            HeavyPart(node.child, node.given, node.threshold)
            if isinstance(node, LightPart)
            else node
        )
        entry = self.split_memo.get(twin_key)
        if entry is not None:
            return entry
        with self._locks_guard:
            lock = self._split_locks.setdefault(twin_key, threading.Lock())
        with lock:
            if twin_key not in self.split_memo:
                child = self._relation(get, node.child)
                self.split_memo[twin_key] = child.heavy_light_split(
                    list(node.given), node.threshold
                )
        return self.split_memo[twin_key]

    # -- the dispatcher -------------------------------------------------
    def eval_op(self, node: Operator, get: Getter) -> Tuple[Payload, int, dict]:
        extra: dict = {}
        if isinstance(node, Scan):
            relation = self.vm.database[node.relation]
            if len(relation.schema) != len(node.schema):
                raise ValueError(
                    f"scan of {node.relation!r} expects arity {len(node.schema)} "
                    f"but the relation has arity {len(relation.schema)}"
                )
            renamed = relation.rename(dict(zip(relation.schema, node.schema)))
            return renamed.with_name(node.relation), len(relation), extra

        if isinstance(node, Project):
            child = self._relation(get, node.child)
            if not node.schema:
                # Nullary projection: one empty tuple iff the child is nonempty.
                return (
                    Relation((), [()] if not child.is_empty() else []),
                    len(child),
                    extra,
                )
            return self._project(node, child, extra), len(child), extra

        if isinstance(node, Restrict):
            child = self._relation(get, node.child)
            if child.is_empty():
                return child, 0, extra
            source = self._relation(get, node.source)
            values = source.column_values(node.source_variable)
            return child.restrict(node.variable, values), len(child) + len(source), extra

        if isinstance(node, (HeavyPart, LightPart)):
            heavy, light = self._heavy_light(node, get)
            child_len = len(self._relation(get, node.child))
            return (heavy if isinstance(node, HeavyPart) else light), child_len, extra

        if isinstance(node, Join):
            left = self._relation(get, node.left)
            if left.is_empty():
                return Relation(node.schema, (), backend=left.backend_kind), 0, extra
            right = self._relation(get, node.right)
            left, right = self.dispatcher.resolve_operands(left, right)
            return self._join(node, left, right, extra), len(left) + len(right), extra

        if isinstance(node, Semijoin):
            child = self._relation(get, node.child)
            if child.is_empty():
                return child, 0, extra
            reducer = self._relation(get, node.reducer)
            child, reducer = self.dispatcher.resolve_operands(child, reducer)
            return (
                self._semijoin(node, child, reducer, negate=False, extra=extra),
                len(child) + len(reducer),
                extra,
            )

        if isinstance(node, Antijoin):
            child = self._relation(get, node.child)
            if child.is_empty():
                return child, 0, extra
            reducer = self._relation(get, node.reducer)
            child, reducer = self.dispatcher.resolve_operands(child, reducer)
            return (
                self._semijoin(node, child, reducer, negate=True, extra=extra),
                len(child) + len(reducer),
                extra,
            )

        if isinstance(node, MultiSemijoin):
            return self._multi_semijoin(node, get)

        if isinstance(node, Union):
            inputs = [self._relation(get, x) for x in node.inputs]
            rows_in = sum(len(r) for r in inputs)
            result = inputs[0]
            for other in inputs[1:]:
                result = result.union(other)
            return result, rows_in, extra

        if isinstance(node, MatMul):
            return self._matmul(node, get)

        if isinstance(node, GroupedMatMul):
            return self._grouped_matmul(node, get)

        if isinstance(node, Wcoj):
            inputs = [self._relation(get, x) for x in node.inputs]
            rows_in = sum(len(r) for r in inputs)
            rows = _wcoj_search(
                inputs, node.variable_order, node.find_all, token=self.vm.token
            )
            backend = inputs[0].backend_kind if inputs else None
            return Relation(node.variable_order, rows, backend=backend), rows_in, extra

        if isinstance(node, Count):
            child = self._relation(get, node.child)
            count = child.count_distinct(list(node.variables_out))
            extra["kernel"] = child.backend_kind
            return count, len(child), extra

        if isinstance(node, Enumerate):
            if node.streaming:
                # Streaming delivery: pull every child — the calibrated
                # reducer state — then hand back a cursor.  Discovery
                # order runs the top-down enumeration join lazily, chunk
                # by chunk; ranked order drains the any-k frontier heap.
                root = self._relation(get, node.child)
                frontiers = [self._relation(get, f) for f in node.frontiers]
                stream_cls = (
                    RankedEnumerationStream
                    if node.order == "ranked"
                    else EnumerationStream
                )
                stream = stream_cls(
                    node, root, frontiers, self.vm.token, self.dispatcher.morsel_size
                )
                extra["kernel"] = stream.kernel
                return stream, stream.rows_in, extra
            # Pass-through sink: the child already holds the distinct
            # output tuples; the engine's ResultSet streams them from the
            # run's result relation in deterministic order.
            child = self._relation(get, node.child)
            return child, len(child), extra

        if isinstance(node, NonEmpty):
            child = self._relation(get, node.child)
            return not child.is_empty(), len(child), extra

        if isinstance(node, Any_):
            count = 0
            for branch in node.inputs:
                count += 1
                if get(branch):
                    return True, count, extra
            return False, count, extra

        if isinstance(node, All_):
            count = 0
            for branch in node.inputs:
                count += 1
                if not get(branch):
                    return False, count, extra
            return True, count, extra

        raise TypeError(f"VM: unknown operator {type(node).__name__}")

    # -- morsel-aware relational kernels --------------------------------
    # Each kernel consults the operator's ``morsel_spec()`` — the IR's
    # declaration of *whether* and *how* (probe child, recombination
    # dedup) it may be partitioned; the dispatcher only decides how many
    # chunks the declared probe side is worth.
    def _project(self, node: Project, child: Relation, extra: dict) -> Relation:
        variables = list(node.schema)
        spec = node.morsel_spec()
        parts = (
            self._split(child, self.dispatcher.morsel_count(child, self.workers))
            if spec is not None
            else None
        )
        if parts is None:
            return child.project(variables)
        extra["morsels"] = len(parts)
        results = self._run_chunks(
            [lambda part=part: part.project(variables) for part in parts]
        )
        return Relation.concat_morsels(results, dedup=spec.dedup)

    def _join(
        self, node: Join, left: Relation, right: Relation, extra: dict
    ) -> Relation:
        shared = tuple(v for v in left.schema if v in right.variables)
        extras = tuple(v for v in right.schema if v not in left.variables)
        spec = node.morsel_spec()
        parts = None
        if spec is not None:
            count = self.dispatcher.join_morsel_count(
                left, right, shared, extras, self.workers
            )
            parts = self._split(left, count)
        if parts is None:
            return left.join(right)
        extra["morsels"] = len(parts)
        results = self._run_chunks(
            [lambda part=part: part.join(right) for part in parts]
        )
        return Relation.concat_morsels(results, dedup=spec.dedup)

    def _semijoin(
        self,
        node: TUnion[Semijoin, Antijoin],
        child: Relation,
        reducer: Relation,
        negate: bool,
        extra: dict,
    ) -> Relation:
        spec = node.morsel_spec()
        parts = (
            self._split(child, self.dispatcher.morsel_count(child, self.workers))
            if spec is not None
            else None
        )
        if parts is None:
            return child.antijoin(reducer) if negate else child.semijoin(reducer)
        extra["morsels"] = len(parts)
        if negate:
            thunks = [lambda part=part: part.antijoin(reducer) for part in parts]
        else:
            thunks = [lambda part=part: part.semijoin(reducer) for part in parts]
        return Relation.concat_morsels(self._run_chunks(thunks), dedup=spec.dedup)

    def _multi_semijoin(
        self, node: MultiSemijoin, get: Getter
    ) -> Tuple[Payload, int, dict]:
        child = self._relation(get, node.child)
        if child.is_empty():
            return child, 0, {}
        # Reducer subtrees are evaluated lazily: if an early reducer proves
        # the target empty, the remaining subplans are never computed (the
        # short-circuit the unfused chain had).
        consumed = [0]

        def reducers() -> Iterator[Relation]:
            for reducer_node in node.reducers:
                reducer = self._relation(get, reducer_node)
                consumed[0] += len(reducer)
                yield reducer

        extra: dict = {}
        result: Optional[Relation] = None
        count = (
            self.dispatcher.morsel_count(child, self.workers)
            if node.morsel_spec() is not None
            else 1
        )
        if count > 1:
            # Fused chunked execution: per-chunk keep-masks ANDed reducer
            # by reducer, one gather at the end — the same consumption
            # protocol (and trace row-counts) as the unsplit fused kernel.
            size = math.ceil(len(child) / count)
            result = child.semijoin_many_morsels(
                reducers(), size, self._run_chunks
            )
            if result is not None:
                extra["morsels"] = count
        if result is None:
            result = child.semijoin_many(reducers())
        return result, len(child) + consumed[0], extra

    # -- matrix-multiplication operators --------------------------------
    def _matmul(self, node: MatMul, get: Getter) -> Tuple[Payload, int, dict]:
        left = self._relation(get, node.left)
        if left.is_empty():
            return (
                Relation(node.schema, (), backend=left.backend_kind),
                0,
                {"matrix_shape": (0, 0, 0)},
            )
        right = self._relation(get, node.right)
        rows_in = len(left) + len(right)
        if right.is_empty():
            return (
                Relation(node.schema, (), backend=left.backend_kind),
                rows_in,
                {"matrix_shape": (0, 0, 0)},
            )
        left_matrix, row_index, inner_index = left.to_matrix(
            list(node.row_variables), list(node.inner_variables)
        )
        right_matrix, _, col_index = right.to_matrix(
            list(node.inner_variables), list(node.col_variables), row_index=inner_index
        )
        shape = (left_matrix.shape[0], left_matrix.shape[1], right_matrix.shape[1])
        kernel = self.dispatcher.mm_kernel(*shape)
        product = boolean_multiply(left_matrix, right_matrix, kernel=kernel)
        decoded = Relation.from_matrix(
            product,
            node.row_variables,
            node.col_variables,
            row_index,
            col_index,
            backend=left.backend_kind,
        )
        return decoded, rows_in, {"matrix_shape": shape, "group_count": 1}

    def _grouped_matmul(
        self, node: GroupedMatMul, get: Getter
    ) -> Tuple[Payload, int, dict]:
        left = self._relation(get, node.left)
        if left.is_empty():
            return (
                Relation(node.schema, (), backend=left.backend_kind),
                0,
                {"matrix_shape": (0, 0, 0)},
            )
        right = self._relation(get, node.right)
        rows_in = len(left) + len(right)
        if right.is_empty():
            return (
                Relation(node.schema, (), backend=left.backend_kind),
                rows_in,
                {"matrix_shape": (0, 0, 0)},
            )
        row_vars = list(node.row_variables)
        inner_vars = list(node.inner_variables)
        col_vars = list(node.col_variables)
        group_vars = list(node.group_variables)
        parts = (
            self._split(left, self.dispatcher.morsel_count(left, self.workers))
            if node.morsel_spec() is not None
            else None
        )
        extra: dict = {}
        if parts is None:
            chunks = [
                _grouped_product_rows(
                    left, right, row_vars, inner_vars, col_vars, group_vars,
                    self.dispatcher,
                )
            ]
        else:
            extra["morsels"] = len(parts)
            chunks = self._run_chunks(
                [
                    lambda part=part: _grouped_product_rows(
                        part, right, row_vars, inner_vars, col_vars, group_vars,
                        self.dispatcher,
                    )
                    for part in parts
                ]
            )
        rows_out: List[Tuple] = []
        matched_groups: set = set()
        max_shape = (0, 0, 0)
        for chunk_rows, chunk_shape, chunk_groups in chunks:
            rows_out.extend(chunk_rows)
            matched_groups |= chunk_groups
            max_shape = max(
                max_shape, chunk_shape, key=lambda s: s[0] * max(s[1], 1) * max(s[2], 1)
            )
        produced = Relation(node.schema, rows_out, backend=left.backend_kind)
        extra.update({"matrix_shape": max_shape, "group_count": len(matched_groups)})
        return produced, rows_in, extra


class _RunState:
    """Sequential evaluation state: memo table, traces, cache counters."""

    def __init__(
        self,
        vm: VirtualMachine,
        ids: Dict[Operator, int],
        fingerprints: Dict[Operator, Hashable],
        context: _EvalContext,
    ) -> None:
        self.vm = vm
        self.ids = ids
        self.fingerprints = fingerprints
        self.context = context
        # bounded-by: per-run lifetime (one entry per program operator)
        self.memo: Dict[Operator, Payload] = {}
        self.traces: List[OpTrace] = []
        self.cache_hits = 0
        self.cache_misses = 0
        #: Child-time accounting so traces carry *exclusive* per-operator
        #: seconds (the sum over all traces approximates the run total).
        self._spans: List[float] = [0.0]

    # ------------------------------------------------------------------
    def eval(self, node: Operator) -> Payload:
        if node in self.memo:
            return self.memo[node]
        if self.vm.token is not None:
            # The sequential interpreter's cooperative cancellation point:
            # one check per operator evaluation, so a deadline fires within
            # one kernel call even at parallelism=1.
            self.vm.token.check()
        cache = self.vm.result_cache
        cache_key = None
        # Scans read straight from the database; Enumerate passes its
        # child's relation through unchanged — caching either would only
        # duplicate rows the cache already holds (or can rebuild for free).
        if cache is not None and cache.enabled and not isinstance(node, (Scan, Enumerate)):
            cache_key = (node.skey, self.fingerprints[node])
            hit = cache.get(cache_key)
            if hit is not None:
                stored_schema, payload = hit
                if isinstance(payload, Relation):
                    payload = payload.rename(dict(zip(stored_schema, node.schema)))
                self.memo[node] = payload
                self.cache_hits += 1
                self._trace(node, payload, rows_in=0, seconds=0.0, cache_hit=True)
                return payload
            self.cache_misses += 1
        start = time.perf_counter()
        self._spans.append(0.0)
        payload, rows_in, extra = self.context.eval_op(node, self.eval)
        span = time.perf_counter() - start
        child_seconds = self._spans.pop()
        self._spans[-1] += span
        self.memo[node] = payload
        if cache_key is not None:
            cache.put(cache_key, node.schema, payload)
        self._trace(
            node,
            payload,
            rows_in=rows_in,
            seconds=max(span - child_seconds, 0.0),
            wall_seconds=span,
            **extra,
        )
        return payload

    def _trace(
        self,
        node: Operator,
        payload: Payload,
        rows_in: int,
        seconds: float,
        cache_hit: bool = False,
        wall_seconds: float = 0.0,
        matrix_shape: Optional[Tuple[int, int, int]] = None,
        group_count: int = 0,
        morsels: int = 0,
        kernel: Optional[str] = None,
    ) -> None:
        self.traces.append(
            _build_trace(
                node,
                self.ids,
                payload,
                rows_in=rows_in,
                seconds=seconds,
                wall_seconds=wall_seconds,
                cache_hit=cache_hit,
                matrix_shape=matrix_shape,
                group_count=group_count,
                morsels=morsels,
                worker=None,
                kernel=kernel,
            )
        )


def _build_trace(
    node: Operator,
    ids: Dict[Operator, int],
    payload: Payload,
    rows_in: int,
    seconds: float,
    wall_seconds: float,
    cache_hit: bool,
    matrix_shape: Optional[Tuple[int, int, int]],
    group_count: int,
    morsels: int,
    worker: Optional[str],
    kernel: Optional[str] = None,
) -> OpTrace:
    if isinstance(payload, bool):
        rows_out = int(payload)
        kernel = kernel or "bool"
    elif isinstance(payload, EnumerationStream):
        # A streaming Enumerate sink: rows_out follows the tuples actually
        # emitted (the stream updates its attached trace as it drains).
        rows_out = payload.emitted
        kernel = kernel or payload.kernel
    elif isinstance(payload, int):
        # A Count sink: rows_out records the count; the kernel override
        # (set by eval_op) names the backend that served the counting.
        rows_out = int(payload)
        kernel = kernel or "scalar"
    else:
        rows_out = len(payload)
        kernel = kernel or payload.backend_kind
    trace = OpTrace(
        op_id=ids.get(node, 0),
        kind=node.kind(),
        label=node.label(),
        schema=node.schema,
        rows_in=rows_in,
        rows_out=rows_out,
        kernel=kernel,
        seconds=seconds,
        cache_hit=cache_hit,
        matrix_shape=matrix_shape,
        group_count=group_count,
        worker=worker,
        morsel_count=morsels,
        wall_seconds=wall_seconds,
    )
    if isinstance(payload, EnumerationStream):
        payload.attach_trace(trace)
    return trace


# ----------------------------------------------------------------------
# The parallel topological scheduler
# ----------------------------------------------------------------------
#: Node lifecycle states.
_WAITING, _QUEUED, _DONE, _CANCELLED, _FAILED = range(5)


class _ParallelRun:
    """One parallel program execution: dependency counting + cancellation.

    Every operator becomes a task on the pool's DAG executor.  A task
    *attempts* evaluation through :meth:`_EvalContext.eval_op` with a
    memo-backed payload provider; if a child it pulls is still pending the
    attempt raises :class:`_NotReady` and the node waits for the next
    trigger.  Triggers are: the last child completing, or *any* child
    completing with a short-circuit-capable payload (an empty relation or
    a Boolean) — which is exactly when the lazy semantics might complete
    the operator without its remaining children.

    Because ``eval_op`` pulls children in a deterministic, value-driven
    order, the set of children each completed node *accessed* is
    deterministic; the traces reported are those of the closure of the
    root under accessed-edges (the needed set), making parallel runs
    trace-identical to sequential ones.  Completed nodes outside that
    closure were speculative; subtrees no live consumer can ever pull are
    cancelled outright.
    """

    def __init__(
        self,
        vm: VirtualMachine,
        program: Program,
        ids: Dict[Operator, int],
        fingerprints: Dict[Operator, Hashable],
        context: _EvalContext,
    ) -> None:
        self.vm = vm
        self.program = program
        self.ids = ids
        self.fingerprints = fingerprints
        self.context = context
        self.pool = vm.pool
        assert self.pool is not None
        nodes = program.nodes()
        # All per-node scheduler tables below are guarded-by: lock and
        # bounded-by: per-run lifetime (at most one entry per operator).
        self.parents: Dict[Operator, List[Operator]] = {node: [] for node in nodes}  # guarded-by: lock
        self.unresolved: Dict[Operator, int] = {}  # guarded-by: lock
        self.need: Dict[Operator, int] = {node: 0 for node in nodes}  # guarded-by: lock
        for node in nodes:
            distinct_children = set(node.children)
            self.unresolved[node] = len(distinct_children)
            for child in distinct_children:
                self.parents[child].append(node)
                self.need[child] += 1
        self.need[program.root] += 1  # the root is always needed
        self.state: Dict[Operator, int] = {node: _WAITING for node in nodes}  # guarded-by: lock
        self.dirty: Dict[Operator, bool] = {}  # guarded-by: lock
        self.memo: Dict[Operator, Payload] = {}  # guarded-by: lock; bounded-by: per-run lifetime
        self.records: Dict[Operator, OpTrace] = {}  # guarded-by: lock; bounded-by: per-run lifetime
        self.accessed: Dict[Operator, Tuple[Operator, ...]] = {}  # guarded-by: lock
        self.checked_cache: Dict[Operator, bool] = {}  # guarded-by: lock; bounded-by: per-run lifetime
        self.futures: Dict[Operator, Future] = {}  # guarded-by: lock
        self.cancelled = 0
        #: Exceptions raised by node attempts.  A failure does NOT abort
        #: the run by itself: sequential lazy evaluation never executes a
        #: doomed sibling subtree, so a *speculative* failure (a kernel
        #: error, even an OOM, on work laziness would have skipped) must
        #: not fail a query that ``parallelism=1`` answers.  The failure
        #: propagates only when a consumer actually *pulls* the failed
        #: node — ending at the root exactly when the sequential run
        #: would have raised.
        self.failures: Dict[Operator, BaseException] = {}  # guarded-by: lock
        self.lock = threading.Lock()
        self.done = threading.Condition(self.lock)

    # ------------------------------------------------------------------
    def execute(self) -> VMResult:
        root = self.program.root
        with self.lock:
            for node in list(self.unresolved):
                if self.unresolved[node] == 0:
                    self._schedule(node)
            while self.state[root] not in (_DONE, _FAILED):
                self.done.wait()
        if self.state[root] == _FAILED:
            failure = self.failures[root]
            if isinstance(failure, QueryCancelled):
                # Mirror the sequential interpreter's accounting: every
                # operator that did not complete was abandoned by the
                # cancellation (including the ones whose attempts raised).
                failure.cancelled_ops = sum(
                    1 for state in self.state.values() if state != _DONE
                )
                failure.traces = sorted(
                    self.records.values(), key=lambda trace: trace.op_id
                )
                failure.parallelism = self.vm.parallelism
            raise failure
        payload = self.memo[root]
        answer, relation, row_count, stream = _interpret_root(payload)
        needed = self._needed_closure(root)
        traces = sorted(
            (self.records[node] for node in needed if node in self.records),
            key=lambda trace: trace.op_id,
        )
        hits = sum(1 for node in needed if self.records[node].cache_hit)
        misses = sum(
            1
            for node in needed
            if self.checked_cache.get(node) and not self.records[node].cache_hit
        )
        return VMResult(
            answer=answer,
            relation=relation,
            row_count=row_count,
            stream=stream,
            traces=traces,
            cache_hits=hits,
            cache_misses=misses,
            parallelism=self.vm.parallelism,
            speculative_ops=len(self.records) - len(needed),
            cancelled_ops=self.cancelled,
        )

    def _needed_closure(self, root: Operator) -> List[Operator]:
        """The nodes the lazy sequential semantics would have evaluated."""
        needed: List[Operator] = []
        seen: set = set()

        def visit(node: Operator) -> None:
            if node in seen:
                return
            seen.add(node)
            needed.append(node)
            for child in self.accessed.get(node, ()):
                visit(child)

        visit(root)
        return needed

    # -- scheduling (lock held) -----------------------------------------
    def _schedule(self, node: Operator) -> None:
        if self.state[node] != _WAITING:
            return
        self.state[node] = _QUEUED
        self.futures[node] = self.pool.submit_node(self._task, node)

    def _trigger(self, node: Operator) -> None:
        if self.need[node] <= 0:
            return  # orphaned: no live consumer, don't resurrect it
        if self.state[node] == _WAITING:
            self._schedule(node)
        elif self.state[node] == _QUEUED:
            self.dirty[node] = True

    def _release(self, node: Operator) -> None:
        """One consumer of ``node`` is gone; cancel the subtree if orphaned."""
        self.need[node] -= 1
        if self.need[node] > 0:
            return
        state = self.state[node]
        if state in (_DONE, _CANCELLED, _FAILED):
            return
        future = self.futures.get(node)
        if state == _QUEUED and future is not None and not future.cancel():
            # Already running — let it finish; its completion handler
            # releases its own children.
            return
        self.state[node] = _CANCELLED
        self.cancelled += 1
        for child in set(node.children):
            self._release(child)

    # -- task body (runs on a DAG worker) --------------------------------
    def _get(self, node: Operator, accessed: List[Operator]) -> Payload:
        # Reading self.memo/self.failures without the lock is safe:
        # entries are written before the completion notification and
        # never mutated.
        failure = self.failures.get(node)
        if failure is not None:
            # Pulling a failed child is how failures propagate: the
            # consumer's attempt re-raises and fails in turn, walking the
            # chain up to the root iff the lazy semantics needs it.
            raise failure
        if node not in self.memo:
            raise _NotReady(node)
        if node not in accessed:
            accessed.append(node)
        return self.memo[node]

    def _task(self, node: Operator) -> None:
        try:
            self._attempt(node)
        except _NotReady:
            with self.lock:
                if self.need[node] <= 0 and self.state[node] == _QUEUED:
                    # Orphaned mid-attempt (a cancel raced the running
                    # task): finish the cancellation the releaser could
                    # not perform.
                    self.state[node] = _CANCELLED
                    self.cancelled += 1
                    self.dirty.pop(node, None)
                    for child in set(node.children):
                        self._release(child)
                elif self.dirty.pop(node, False):
                    # A trigger arrived mid-attempt; try again right away.
                    self.futures[node] = self.pool.submit_node(self._task, node)
                else:
                    self.state[node] = _WAITING
        except BaseException as exc:
            self._fail(node, exc)

    def _fail(self, node: Operator, exc: BaseException) -> None:
        """Record a node failure; consumers that pull it fail in turn."""
        with self.lock:
            self.failures[node] = exc
            self.state[node] = _FAILED
            self.dirty.pop(node, None)
            for parent in self.parents[node]:
                self.unresolved[parent] -= 1
                # A failure is a decided outcome: wake the parent so it
                # either short-circuits without this child or inherits
                # the failure by pulling it.
                self._trigger(parent)
            for child in set(node.children):
                self._release(child)
            self.done.notify_all()

    def _attempt(self, node: Operator) -> None:
        if self.vm.token is not None:
            # A fired token fails this node; the failure propagates through
            # the scheduler's existing failure/cancel path (parents pull
            # the failed child and fail in turn) up to the root.
            self.vm.token.check()
        cache = self.vm.result_cache
        checked = False
        # Same exemptions as the sequential path: Scan and the
        # pass-through Enumerate never enter the result cache.
        if cache is not None and cache.enabled and not isinstance(node, (Scan, Enumerate)):
            checked = True
            hit = cache.get((node.skey, self.fingerprints[node]))
            if hit is not None:
                stored_schema, payload = hit
                if isinstance(payload, Relation):
                    payload = payload.rename(dict(zip(stored_schema, node.schema)))
                trace = _build_trace(
                    node, self.ids, payload,
                    rows_in=0, seconds=0.0, wall_seconds=0.0,
                    cache_hit=True, matrix_shape=None, group_count=0,
                    morsels=0, worker=_worker_name(),
                )
                self._complete(node, payload, trace, (), checked)
                return
        accessed: List[Operator] = []
        start = time.perf_counter()
        payload, rows_in, extra = self.context.eval_op(
            node, lambda child: self._get(child, accessed)
        )
        span = time.perf_counter() - start
        if checked:
            cache.put((node.skey, self.fingerprints[node]), node.schema, payload)
        trace = _build_trace(
            node, self.ids, payload,
            rows_in=rows_in, seconds=span, wall_seconds=span,
            cache_hit=False,
            matrix_shape=extra.get("matrix_shape"),
            group_count=extra.get("group_count", 0),
            morsels=extra.get("morsels", 0),
            worker=_worker_name(),
            kernel=extra.get("kernel"),
        )
        self._complete(node, payload, trace, tuple(accessed), checked)

    def _complete(
        self,
        node: Operator,
        payload: Payload,
        trace: OpTrace,
        accessed: Tuple[Operator, ...],
        checked_cache: bool,
    ) -> None:
        is_bool = isinstance(payload, bool)
        is_empty = isinstance(payload, Relation) and payload.is_empty()
        with self.lock:
            if self.state[node] == _DONE:  # pragma: no cover - defensive
                return
            self.memo[node] = payload
            self.records[node] = trace
            self.accessed[node] = accessed
            self.checked_cache[node] = checked_cache
            self.state[node] = _DONE
            self.dirty.pop(node, None)
            for parent in self.parents[node]:
                self.unresolved[parent] -= 1
                trigger = self.unresolved[parent] == 0
                if not trigger and is_empty:
                    # Early attempt only where the IR metadata says this
                    # child's emptiness alone can decide the parent.
                    # Structural equality, not identity: an un-CSE'd DAG
                    # may hold several equal instances of one operator.
                    short_circuit = parent.empty_short_circuit
                    trigger = (
                        short_circuit is not None
                        and parent.children[short_circuit] == node
                    )
                if not trigger and is_bool:
                    # Boolean combinators complete on a decided prefix.
                    trigger = True
                if trigger:
                    self._trigger(parent)
            for child in set(node.children):
                self._release(child)
            self.done.notify_all()


# ----------------------------------------------------------------------
# Row-loop kernels (moved from db/joins.py and core/executor.py)
# ----------------------------------------------------------------------
def _wcoj_search(
    relations: Sequence[Relation],
    variable_order: Sequence[str],
    find_all: bool,
    token: Optional[CancellationToken] = None,
) -> List[Row]:
    """The GenericJoin backtracking search over pre-bound atom relations."""
    results: List[Row] = []

    def extend(assignment: Dict[str, object], depth: int) -> bool:
        if token is not None:
            # The exhaustive search is the one kernel whose single
            # invocation can dominate a query, so it checks the token per
            # extension step rather than only between operators.
            token.check()
        if depth == len(variable_order):
            results.append(tuple(assignment[v] for v in variable_order))
            return True
        variable = variable_order[depth]
        candidates: Optional[set] = None
        for relation in relations:
            if variable not in relation.variables:
                continue
            bound = {v: assignment[v] for v in relation.schema if v in assignment}
            matching = relation.select(bound) if bound else relation
            values = matching.column_values(variable)
            candidates = set(values) if candidates is None else candidates & values
            if not candidates:
                return False
        if candidates is None:
            candidates = set()
        found = False
        for value in candidates:
            assignment[variable] = value
            if extend(assignment, depth + 1):
                found = True
                if not find_all:
                    del assignment[variable]
                    return True
            del assignment[variable]
        return found

    extend({}, 0)
    return results


def _group_rows(
    relation: Relation, group_vars: Sequence[str], share: bool = False
) -> Dict[Tuple, List[Tuple]]:
    positions = [relation.schema.index(v) for v in group_vars]
    backend = relation._backend if share else None
    cache_key = ("mmgroups", tuple(positions))
    if backend is not None:
        cached = backend.cache_get(cache_key)
        if cached is not None:
            return cached
    groups: Dict[Tuple, List[Tuple]] = {}
    for row in relation.rows:
        key = tuple(row[p] for p in positions)
        groups.setdefault(key, []).append(row)
    if backend is not None:
        # Positional key, so renames (which share the backend cache) and
        # every chunk of a morsel fan-out reuse one grouping pass; the
        # backend bounds the family so long-lived relations don't
        # accumulate row copies.
        backend.cache_put(cache_key, groups, family_limit=4)
    return groups


def _binary_matrix(
    rows: Sequence[Tuple],
    schema: Sequence[str],
    row_vars: Sequence[str],
    col_vars: Sequence[str],
    row_index: Optional[Dict[Tuple, int]] = None,
) -> Tuple[np.ndarray, Dict[Tuple, int], Dict[Tuple, int]]:
    row_positions = [schema.index(v) for v in row_vars]
    col_positions = [schema.index(v) for v in col_vars]
    pairs = {
        (
            tuple(row[p] for p in row_positions),
            tuple(row[p] for p in col_positions),
        )
        for row in rows
    }
    if row_index is None:
        row_index = {}
        for row_key, _ in sorted(pairs):
            if row_key not in row_index:
                row_index[row_key] = len(row_index)
    col_index: Dict[Tuple, int] = {}
    for _, col_key in sorted(pairs):
        if col_key not in col_index:
            col_index[col_key] = len(col_index)
    matrix = matrix_from_pairs(
        pairs,
        row_index,
        col_index,
        shape=(max(len(row_index), 1), max(len(col_index), 1)),
    )
    return matrix, row_index, col_index


def _grouped_product_rows(
    left: Relation,
    right: Relation,
    row_vars: List[str],
    inner_vars: List[str],
    col_vars: List[str],
    group_vars: List[str],
    dispatcher: KernelDispatcher,
) -> Tuple[List[Tuple], Tuple[int, int, int], set]:
    """Per-group Boolean matrix products over one (chunk of the) left side.

    Returns the decoded output rows, the largest product shape seen, and
    the set of group keys matched on both sides — chunk results recombine
    by concatenation + dedup (a group's left rows may span chunks).
    """
    left_groups = _group_rows(left, group_vars)
    right_groups = _group_rows(right, group_vars, share=True)
    rows_out: List[Tuple] = []
    max_shape = (0, 0, 0)
    matched: set = set()
    for group_key, left_rows in left_groups.items():
        right_rows = right_groups.get(group_key)
        if not right_rows:
            continue
        matched.add(group_key)
        left_matrix, row_index, inner_index = _binary_matrix(
            left_rows, left.schema, row_vars, inner_vars
        )
        right_matrix, _, col_index = _binary_matrix(
            right_rows, right.schema, inner_vars, col_vars, row_index=inner_index
        )
        shape = (left_matrix.shape[0], left_matrix.shape[1], right_matrix.shape[1])
        kernel = dispatcher.mm_kernel(*shape)
        product = boolean_multiply(left_matrix, right_matrix, kernel=kernel)
        max_shape = max(
            max_shape, shape, key=lambda s: s[0] * max(s[1], 1) * max(s[2], 1)
        )
        row_values = {position: key for key, position in row_index.items()}
        col_values = {position: key for key, position in col_index.items()}
        nonzero_rows, nonzero_cols = np.nonzero(product)
        for i, j in zip(nonzero_rows.tolist(), nonzero_cols.tolist()):
            rows_out.append(row_values[i] + col_values[j] + group_key)
    return rows_out, max_shape, matched


def run_program(
    program: Program,
    database: Database,
    result_cache: Optional[ResultCache] = None,
    *,
    parallelism: int = 1,
    dispatcher: Optional[KernelDispatcher] = None,
    pool: Optional[WorkerPool] = None,
    token: Optional[CancellationToken] = None,
) -> VMResult:
    """Convenience wrapper: execute one program on one database.

    With ``parallelism > 1`` and no shared ``pool``, a transient
    :class:`WorkerPool` is created for the run and shut down afterwards.
    """
    vm = VirtualMachine(
        database,
        result_cache=result_cache,
        dispatcher=dispatcher,
        parallelism=parallelism,
        pool=pool,
        token=token,
    )
    try:
        return vm.run(program)
    finally:
        vm.close()
