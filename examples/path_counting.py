"""Query verbs: counting 2-paths and enumerating triangle witnesses.

Run with::

    python examples/path_counting.py

The script shows the output-aware API on top of the same engine that
answers Boolean queries: a Datalog head with variables — ``Q(X, Z) :- ...``
— makes the query output-producing, and the engine serves it through three
verbs sharing one set of strategies, caches and VM kernels:

* ``engine.exists(q)`` — satisfiability (``engine.ask`` is a thin alias);
* ``engine.count(q)``  — the number of distinct output tuples, counted on
  the columnar code arrays without materializing the output;
* ``engine.select(q, limit=k)`` — a lazy ResultSet streaming the first
  ``k`` distinct output tuples in a deterministic order.

The historical ``answer_boolean_query`` free function is deprecated; build
one ``QueryEngine`` and use the verbs.
"""

from __future__ import annotations

from repro import QueryEngine
from repro.db import parse_query, triangle_instance


def main() -> None:
    database = triangle_instance(
        num_edges=3_000, domain_size=120, skew="heavy", plant_triangle=True, seed=7
    )
    engine = QueryEngine(database, backend="columnar")
    print(f"database size N = {database.size} tuples (columnar backend)")
    print()

    print("=== count(): how many distinct 2-paths X -R-> Y -S-> Z? ===")
    two_paths = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)")
    counted = engine.count(two_paths)
    print(f"query     : {two_paths}")
    print(f"strategy  : {counted.strategy} (auto; acyclic -> Yannakakis)")
    print(f"2-paths   : {counted.row_count} distinct (X, Z) pairs")
    print(f"time      : {counted.seconds * 1e3:.2f} ms")
    print()

    print("=== select(limit=k): the first triangle witnesses ===")
    triangles = parse_query("Q(X, Y, Z) :- R(X, Y), S(Y, Z), T(X, Z)")
    witnesses = engine.select(triangles, limit=5)
    # Nothing has executed yet; rows stream on the first pull, in a
    # deterministic order independent of backend and parallelism.
    print(f"query     : {triangles}")
    print(f"executed before pulling rows? {witnesses.executed}")
    for x, y, z in witnesses:
        print(f"  triangle ({x}, {y}, {z})")
    print(f"strategy  : {witnesses.result.strategy} (cyclic -> exhaustive WCOJ)")
    total = engine.count(triangles)
    print(f"in total  : {total.row_count} distinct triangles")
    print()

    print("=== exists(): the Boolean verb (ask() is an alias) ===")
    exists = engine.exists(triangles)
    print(f"answer    : {exists.answer} via {exists.strategy} "
          f"in {exists.seconds * 1e3:.2f} ms")
    print()

    print("=== to_dict(): JSON-safe result summaries for services ===")
    import json

    document = counted.to_dict()
    document["trace"] = f"<{len(document['trace'])} operator traces>"
    print(json.dumps(document, indent=2))


if __name__ == "__main__":
    main()
