"""The ``repro`` console entry point: ``repl``, ``serve``, ``client``.

* ``repro repl [files.csv ...]`` — interactive query shell; positional
  CSV/TSV files are pre-loaded as relations named after their stems.
* ``repro serve --port 7432`` — the concurrent line-JSON query server.
* ``repro client --port 7432 'COUNT R(X, Y)'`` — run statements against
  a server (from arguments, or stdin when none are given).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-engine front door: REPL, server, and client.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    repl = commands.add_parser("repl", help="interactive query shell")
    repl.add_argument(
        "files", nargs="*", help="CSV/TSV files to pre-load as relations"
    )
    repl.add_argument(
        "--parallelism", type=int, default=None, help="engine worker count"
    )
    repl.add_argument(
        "--timeout", type=float, default=None, help="per-statement timeout (s)"
    )

    serve = commands.add_parser("serve", help="run the line-JSON query server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7432)
    serve.add_argument(
        "files", nargs="*", help="CSV/TSV files to pre-load as relations"
    )
    serve.add_argument(
        "--parallelism", type=int, default=None, help="engine worker count"
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=4,
        help="statements executing at once",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=8,
        help="waiting statements before overload rejection",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-query deadline (s)",
    )
    serve.add_argument(
        "--max-timeout", type=float, default=None,
        help="cap on client-requested deadlines (s)",
    )

    client = commands.add_parser("client", help="send statements to a server")
    client.add_argument("statements", nargs="*", help="statements to run")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7432)
    client.add_argument(
        "--timeout", type=float, default=None, help="per-query deadline (s)"
    )
    return parser


def _load_files(database, files: List[str]) -> None:
    for path in files:
        relation = database.load_csv(path)
        print(f"loaded {relation.name} ({len(relation)} rows)")


def _cmd_repl(args: argparse.Namespace) -> int:
    from .api.engine import QueryEngine
    from .db.database import Database
    from .lang.repl import run_repl
    from .lang.session import Session

    database = Database()
    _load_files(database, args.files)
    kwargs = {} if args.parallelism is None else {"parallelism": args.parallelism}
    engine = QueryEngine(database, **kwargs)
    run_repl(Session(engine=engine), timeout=args.timeout)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api.engine import QueryEngine
    from .db.database import Database
    from .server.server import QueryServer

    database = Database()
    _load_files(database, args.files)
    kwargs = {} if args.parallelism is None else {"parallelism": args.parallelism}
    engine = QueryEngine(database, **kwargs)
    server = QueryServer(
        engine=engine,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue_depth=args.max_queue_depth,
        default_timeout=args.timeout,
        max_timeout=args.max_timeout,
    )

    async def run() -> None:
        await server.start()
        print(f"repro server listening on {server.address}")
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("draining...")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .server.client import QueryClient, ServerError

    statements = args.statements
    if not statements:
        statements = [
            line.strip()
            for line in sys.stdin
            if line.strip() and not line.strip().startswith("#")
        ]

    async def run() -> int:
        failures = 0
        client = await QueryClient.connect(args.host, args.port)
        try:
            for statement in statements:
                try:
                    document = await client.execute(
                        statement, timeout=args.timeout
                    )
                except ServerError as error:
                    failures += 1
                    print(error.document.get("diagnostic") or f"error: {error}")
                    continue
                kind = document.get("kind")
                payload = document.get("payload", {})
                if kind == "exists":
                    print(str(payload.get("answer")).lower())
                elif kind == "count":
                    print(payload.get("row_count"))
                elif kind == "select":
                    for row in document.get("rows", []):
                        print(tuple(row))
                else:
                    print(payload.get("text", payload))
        finally:
            await client.close()
        return 1 if failures else 0

    return asyncio.run(run())


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "repl":
        return _cmd_repl(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_client(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
